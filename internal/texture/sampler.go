package texture

import (
	"math"

	"gpuchar/internal/cache"
	"gpuchar/internal/gmath"
	"gpuchar/internal/mem"
	"gpuchar/internal/metrics"
)

// FilterMode selects the texture filtering algorithm.
type FilterMode uint8

// Filtering modes. Anisotropic filtering takes a variable number of
// bilinear probes along the major axis of the pixel footprint — the
// dynamic component the paper's Table XIII characterizes.
const (
	FilterNearest FilterMode = iota
	FilterBilinear
	FilterTrilinear
	FilterAniso
)

// String names the filter mode like the paper's Table I ("Trilinear",
// "Anisotropic").
func (f FilterMode) String() string {
	switch f {
	case FilterNearest:
		return "Nearest"
	case FilterBilinear:
		return "Bilinear"
	case FilterTrilinear:
		return "Trilinear"
	default:
		return "Anisotropic"
	}
}

// SamplerState is the per-unit filtering configuration.
type SamplerState struct {
	Filter FilterMode
	// MaxAniso caps the anisotropy ratio (16 in the paper's "16X" runs).
	MaxAniso int
	// LODBias is added to the computed level of detail.
	LODBias float32
}

// SampleStats counts filtering work in the paper's units.
type SampleStats struct {
	// Requests counts texture requests (one per fragment per texture
	// instruction).
	Requests int64
	// BilinearSamples counts bilinear samples taken; modern GPUs
	// execute one per cycle per pipe, so BilinearSamples/Requests is
	// the throughput cost of Table XIII.
	BilinearSamples int64
	// TexelFetches counts individual texel reads before cache filtering.
	TexelFetches int64
}

// Register binds every counter of s into the registry under prefix —
// the single definition of the texture sampling counter names.
func (s *SampleStats) Register(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/requests", &s.Requests)
	r.Bind(prefix+"/bilinear_samples", &s.BilinearSamples)
	r.Bind(prefix+"/texel_fetches", &s.TexelFetches)
}

// AvgBilinearPerRequest returns the Table XIII headline metric.
func (s SampleStats) AvgBilinearPerRequest() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.BilinearSamples) / float64(s.Requests)
}

// L0Config and L1Config are the paper's Table XIV texture cache
// geometries: a small fully-associative L0 holding decompressed texels
// and a set-associative L1 holding compressed data. They are the
// defaults for units created without explicit geometries.
var (
	L0Config = cache.Config{Ways: 64, Sets: 1, LineBytes: 64}
	L1Config = cache.Config{Ways: 16, Sets: 16, LineBytes: 64}
)

// Unit is the texture sampling unit: sixteen texture bindings, the
// two-level cache hierarchy, and the memory controller connection. It
// implements the shader.Sampler interface.
type Unit struct {
	bindings [16]binding
	l0Cfg    cache.Config
	l1Cfg    cache.Config
	l0       *cache.Cache
	l1       *cache.Cache
	memctl   *mem.Controller
	stats    SampleStats
}

type binding struct {
	tex   *Texture
	state SamplerState
}

// NewUnit creates a texture unit with the Table XIV cache geometries
// connected to the given memory controller (which may be nil for pure
// filtering tests).
func NewUnit(m *mem.Controller) *Unit {
	return NewUnitCaches(m, L0Config, L1Config)
}

// NewUnitCaches is NewUnit with explicit L0/L1 geometries, the hook the
// sweepable hardware variants configure. The geometries must be valid
// per cache.New; hwconfig.Variant.Validate vets user-supplied configs
// before they reach this constructor.
func NewUnitCaches(m *mem.Controller, l0, l1 cache.Config) *Unit {
	return &Unit{
		l0Cfg:  l0,
		l1Cfg:  l1,
		l0:     cache.MustNew(l0),
		l1:     cache.MustNew(l1),
		memctl: m,
	}
}

// Bind attaches a texture with sampling state to a unit slot.
func (u *Unit) Bind(slot int, t *Texture, st SamplerState) {
	u.bindings[slot&15] = binding{tex: t, state: st}
}

// Stats returns the accumulated sampling statistics.
func (u *Unit) Stats() SampleStats { return u.stats }

// L0Stats and L1Stats expose the cache statistics for Table XIV.
func (u *Unit) L0Stats() cache.Stats { return u.l0.Stats() }

// L1Stats returns the compressed-level cache statistics.
func (u *Unit) L1Stats() cache.Stats { return u.l1.Stats() }

// ResetStats clears sampling and cache statistics.
func (u *Unit) ResetStats() {
	u.stats = SampleStats{}
	u.l0.ResetStats()
	u.l1.ResetStats()
}

// RegisterMetrics binds the sampling and L0/L1 cache counters into r
// under the three prefixes.
func (u *Unit) RegisterMetrics(r *metrics.Registry, texPrefix, l0Prefix, l1Prefix string) {
	u.stats.Register(r, texPrefix)
	u.l0.RegisterMetrics(r, l0Prefix)
	u.l1.RegisterMetrics(r, l1Prefix)
}

// SampleQuad filters the bound texture for a 2x2 quad. The level of
// detail and anisotropy are derived from the coordinate differences
// across the quad, exactly as hardware does. Lane order is (x,y),
// (x+1,y), (x,y+1), (x+1,y+1).
func (u *Unit) SampleQuad(unit int, coords *[4]gmath.Vec4, bias float32,
	projective bool) [4]gmath.Vec4 {

	b := &u.bindings[unit&15]
	if b.tex == nil {
		return [4]gmath.Vec4{}
	}
	var st [4]gmath.Vec2
	for lane := 0; lane < 4; lane++ {
		s, t, q := coords[lane].X, coords[lane].Y, coords[lane].W
		if projective && q != 0 {
			s, t = s/q, t/q
		}
		st[lane] = gmath.V2(s, t)
	}

	w0, h0 := b.tex.LevelSize(0)
	fw, fh := float32(w0), float32(h0)
	// Texel-space derivatives across the quad.
	dx := gmath.V2((st[1].X-st[0].X)*fw, (st[1].Y-st[0].Y)*fh)
	dy := gmath.V2((st[2].X-st[0].X)*fw, (st[2].Y-st[0].Y)*fh)
	lenX := dx.Len()
	lenY := dy.Len()

	pMax, pMin := lenX, lenY
	major := dx
	if lenY > lenX {
		pMax, pMin = lenY, lenX
		major = dy
	}
	if pMax < 1e-8 {
		pMax = 1e-8
	}
	if pMin < 1e-8 {
		pMin = 1e-8
	}

	// Probe count and LOD per filter mode.
	probes := 1
	lod := float32(math.Log2(float64(pMax)))
	switch b.state.Filter {
	case FilterAniso:
		ratio := pMax / pMin
		maxA := float32(b.state.MaxAniso)
		if maxA < 1 {
			maxA = 1
		}
		if ratio > maxA {
			ratio = maxA
		}
		probes = int(math.Ceil(float64(ratio)))
		if probes < 1 {
			probes = 1
		}
		lod = float32(math.Log2(float64(pMax / float32(probes))))
	case FilterNearest, FilterBilinear:
		// single probe at rounded/fractional lod below
	case FilterTrilinear:
		// single probe, two mips
	}
	lod += b.state.LODBias + bias
	maxLod := float32(b.tex.Levels() - 1)
	lod = gmath.Clamp(lod, 0, maxLod)

	trilinear := b.state.Filter == FilterTrilinear || b.state.Filter == FilterAniso
	var out [4]gmath.Vec4
	for lane := 0; lane < 4; lane++ {
		u.stats.Requests++
		var acc gmath.Vec4
		// Probe positions step along the major footprint axis in
		// normalized coordinates.
		stepS := major.X / (fw * float32(probes))
		stepT := major.Y / (fh * float32(probes))
		for p := 0; p < probes; p++ {
			off := float32(p) - float32(probes-1)/2
			ps := st[lane].X + stepS*off
			pt := st[lane].Y + stepT*off
			var c gmath.Vec4
			switch {
			case b.state.Filter == FilterNearest:
				c = u.fetchNearest(b.tex, ps, pt, int(lod+0.5))
				u.stats.BilinearSamples++ // nearest occupies one sample slot
			case trilinear:
				l0i := int(lod)
				frac := lod - float32(l0i)
				cA := u.bilinear(b.tex, ps, pt, l0i)
				cB := u.bilinear(b.tex, ps, pt, minInt(l0i+1, int(maxLod)))
				c = cA.Lerp(cB, frac)
				u.stats.BilinearSamples += 2
			default: // bilinear
				c = u.bilinear(b.tex, ps, pt, int(lod+0.5))
				u.stats.BilinearSamples++
			}
			acc = acc.Add(c)
		}
		out[lane] = acc.Scale(1 / float32(probes))
	}
	return out
}

// bilinear performs one bilinear sample: four texel fetches with
// fractional weighting.
func (u *Unit) bilinear(t *Texture, s, tc float32, lv int) gmath.Vec4 {
	lw, lh := t.LevelSize(lv)
	x := s*float32(lw) - 0.5
	y := tc*float32(lh) - 0.5
	x0 := int(floorf(x))
	y0 := int(floorf(y))
	fx := x - float32(x0)
	fy := y - float32(y0)

	c00 := u.fetchTexel(t, x0, y0, lv)
	c10 := u.fetchTexel(t, x0+1, y0, lv)
	c01 := u.fetchTexel(t, x0, y0+1, lv)
	c11 := u.fetchTexel(t, x0+1, y0+1, lv)

	top := c00.Lerp(c10, fx)
	bot := c01.Lerp(c11, fx)
	return top.Lerp(bot, fy)
}

func (u *Unit) fetchNearest(t *Texture, s, tc float32, lv int) gmath.Vec4 {
	lw, lh := t.LevelSize(lv)
	x := int(floorf(s * float32(lw)))
	y := int(floorf(tc * float32(lh)))
	return u.fetchTexel(t, x, y, lv)
}

// fetchTexel reads one texel, driving the cache hierarchy: the L0 cache
// is addressed in decompressed space; an L0 miss fetches through the L1
// cache in compressed space; an L1 miss reads GDDR.
func (u *Unit) fetchTexel(t *Texture, x, y, lv int) gmath.Vec4 {
	c, compAddr := t.Texel(x, y, lv)
	u.stats.TexelFetches++
	// Decompressed-space address: scale the texture's base so distinct
	// textures never alias (decompressed data is at most 8x larger than
	// DXT1; 16x margin).
	uncAddr := t.BaseAddr*16 + t.uncompressedOffset(x, y, lv)
	if !u.l0.Access(uncAddr, false) {
		if !u.l1.Access(compAddr, false) && u.memctl != nil {
			u.memctl.Read(mem.ClientTexture, int64(u.l1Cfg.LineBytes))
		}
	}
	return gmath.Vec4{
		X: float32(c.R) / 255,
		Y: float32(c.G) / 255,
		Z: float32(c.B) / 255,
		W: float32(c.A) / 255,
	}
}

// uncompressedOffset computes the tiled 4-bytes-per-texel address used
// for L0 (decompressed) lookups: 4x4-texel tiles of 64 bytes. The level
// base (sum of 4-byte-per-texel level sizes) and the per-row tile count
// are precomputed by initLayout.
func (t *Texture) uncompressedOffset(x, y, lv int) uint64 {
	lv = clampInt(lv, 0, len(t.levels)-1)
	li := &t.levels[lv]
	x &= li.wMask
	y &= li.hMask
	tile := (y>>2)*li.uncTilesPerRow + x>>2
	within := (y&3)<<2 + x&3
	return li.uncBase + uint64(tile)<<6 + uint64(within)<<2
}

func floorf(x float32) float32 { return float32(math.Floor(float64(x))) }
