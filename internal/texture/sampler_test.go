package texture

import (
	"testing"

	"gpuchar/internal/gmath"
	"gpuchar/internal/mem"
)

// quadCoords builds the four lane coordinates of a screen-aligned quad
// whose texture footprint per pixel is (du, dv) horizontally and
// vertically isotropicly scaled by (dudx, dvdy).
func quadCoords(s, t, dudx, dvdy float32) [4]gmath.Vec4 {
	return [4]gmath.Vec4{
		{X: s, Y: t, W: 1},
		{X: s + dudx, Y: t, W: 1},
		{X: s, Y: t + dvdy, W: 1},
		{X: s + dudx, Y: t + dvdy, W: 1},
	}
}

func newTestUnit(filter FilterMode, maxAniso int) (*Unit, *mem.Controller) {
	m := mem.NewController()
	u := NewUnit(m)
	tex := MustNew("t", FormatDXT1, 256, 256, Checker(16,
		RGBA{255, 255, 255, 255}, RGBA{0, 0, 0, 255}))
	tex.BaseAddr = 0x100000
	u.Bind(0, tex, SamplerState{Filter: filter, MaxAniso: maxAniso})
	return u, m
}

func TestBilinearSampleCountIsotropic(t *testing.T) {
	u, _ := newTestUnit(FilterBilinear, 0)
	// Footprint of exactly one texel per pixel -> lod 0, one bilinear
	// sample per request.
	coords := quadCoords(0.5, 0.5, 1.0/256, 1.0/256)
	u.SampleQuad(0, &coords, 0, false)
	s := u.Stats()
	if s.Requests != 4 {
		t.Errorf("requests = %d, want 4", s.Requests)
	}
	if s.BilinearSamples != 4 {
		t.Errorf("bilinear = %d, want 4 (one per lane)", s.BilinearSamples)
	}
}

func TestTrilinearDoublesSamples(t *testing.T) {
	u, _ := newTestUnit(FilterTrilinear, 0)
	coords := quadCoords(0.5, 0.5, 1.5/256, 1.5/256)
	u.SampleQuad(0, &coords, 0, false)
	s := u.Stats()
	if s.BilinearSamples != 8 {
		t.Errorf("trilinear bilinear samples = %d, want 8", s.BilinearSamples)
	}
}

func TestAnisoProbeCount(t *testing.T) {
	u, _ := newTestUnit(FilterAniso, 16)
	// Footprint 4x wider than tall: expect 4 probes x 2 (trilinear)
	// bilinear samples per request.
	coords := quadCoords(0.5, 0.5, 4.0/256, 1.0/256)
	u.SampleQuad(0, &coords, 0, false)
	s := u.Stats()
	if got := s.AvgBilinearPerRequest(); got != 8 {
		t.Errorf("aniso 4:1 bilinear/request = %v, want 8", got)
	}
}

func TestAnisoClampedToMax(t *testing.T) {
	u, _ := newTestUnit(FilterAniso, 4)
	// 16:1 footprint but clamped to 4 probes.
	coords := quadCoords(0.5, 0.5, 16.0/256, 1.0/256)
	u.SampleQuad(0, &coords, 0, false)
	if got := u.Stats().AvgBilinearPerRequest(); got != 8 {
		t.Errorf("clamped aniso = %v bilinear/request, want 8", got)
	}
}

func TestAnisoIsotropicFootprintSingleProbe(t *testing.T) {
	u, _ := newTestUnit(FilterAniso, 16)
	coords := quadCoords(0.5, 0.5, 1.0/256, 1.0/256)
	u.SampleQuad(0, &coords, 0, false)
	// Isotropic: 1 probe, trilinear -> 2 bilinears.
	if got := u.Stats().AvgBilinearPerRequest(); got != 2 {
		t.Errorf("isotropic aniso = %v, want 2", got)
	}
}

func TestSampleValueCheckerboard(t *testing.T) {
	m := mem.NewController()
	u := NewUnit(m)
	tex := MustNew("t", FormatRGBA8, 64, 64, Checker(32,
		RGBA{255, 255, 255, 255}, RGBA{0, 0, 0, 255}))
	u.Bind(0, tex, SamplerState{Filter: FilterBilinear})
	// Sample well inside the white cell.
	coords := quadCoords(0.2, 0.2, 1.0/64, 1.0/64)
	out := u.SampleQuad(0, &coords, 0, false)
	if out[0].X < 0.9 {
		t.Errorf("white cell sample = %v", out[0])
	}
	// And inside the black cell.
	coords2 := quadCoords(0.7, 0.2, 1.0/64, 1.0/64)
	out2 := u.SampleQuad(0, &coords2, 0, false)
	if out2[0].X > 0.1 {
		t.Errorf("black cell sample = %v", out2[0])
	}
}

func TestProjectiveDivide(t *testing.T) {
	m := mem.NewController()
	u := NewUnit(m)
	tex := MustNew("t", FormatRGBA8, 64, 64, func(x, y, lv int) RGBA {
		if x < 32 {
			return RGBA{255, 0, 0, 255}
		}
		return RGBA{0, 255, 0, 255}
	})
	u.Bind(0, tex, SamplerState{Filter: FilterBilinear})
	// s=1.5 with q=2 -> s/q=0.75, right half (green).
	coords := [4]gmath.Vec4{
		{X: 1.5, Y: 0.5, W: 2},
		{X: 1.5 + 2.0/64, Y: 0.5, W: 2},
		{X: 1.5, Y: 0.5 + 2.0/64, W: 2},
		{X: 1.5 + 2.0/64, Y: 0.5 + 2.0/64, W: 2},
	}
	out := u.SampleQuad(0, &coords, 0, true)
	if out[0].Y < 0.9 || out[0].X > 0.1 {
		t.Errorf("projective sample = %v, want green", out[0])
	}
}

func TestCacheTrafficFlowsToMemory(t *testing.T) {
	u, m := newTestUnit(FilterBilinear, 0)
	// Sweep the whole texture so the caches must miss repeatedly.
	for i := 0; i < 64; i++ {
		s := float32(i) / 64
		for j := 0; j < 64; j++ {
			tc := float32(j) / 64
			coords := quadCoords(s, tc, 1.0/256, 1.0/256)
			u.SampleQuad(0, &coords, 0, false)
		}
	}
	if u.L0Stats().Accesses() == 0 {
		t.Fatal("L0 never accessed")
	}
	if u.L1Stats().Accesses() == 0 {
		t.Fatal("L1 never accessed (all L0 hits?)")
	}
	tex := m.ClientTraffic(mem.ClientTexture)
	if tex.ReadBytes == 0 {
		t.Fatal("no texture memory traffic")
	}
	// Compression + caches: traffic must be far below the naive 16
	// bytes per bilinear sample the paper quotes for uncached data.
	naive := u.Stats().BilinearSamples * 16
	if tex.ReadBytes >= naive {
		t.Errorf("traffic %d >= naive %d; caches ineffective", tex.ReadBytes, naive)
	}
}

func TestL0HitRateHighForCoherentAccess(t *testing.T) {
	u, _ := newTestUnit(FilterBilinear, 0)
	// Walk texel by texel, like adjacent fragments of a big triangle:
	// consecutive fetches share cache lines heavily.
	for i := 0; i < 128; i++ {
		s := 0.25 + float32(i)/1024
		coords := quadCoords(s, 0.25, 1.0/256, 1.0/256)
		u.SampleQuad(0, &coords, 0, false)
	}
	hr := u.L0Stats().HitRate()
	if hr < 0.9 {
		t.Errorf("coherent L0 hit rate = %v, want > 0.9", hr)
	}
}

func TestUnboundUnitReturnsBlack(t *testing.T) {
	u := NewUnit(nil)
	coords := quadCoords(0.5, 0.5, 1.0/64, 1.0/64)
	out := u.SampleQuad(3, &coords, 0, false)
	if out[0] != (gmath.Vec4{}) {
		t.Errorf("unbound sample = %v", out[0])
	}
	if u.Stats().Requests != 0 {
		t.Error("unbound sample should not count requests")
	}
}

func TestResetStats(t *testing.T) {
	u, _ := newTestUnit(FilterBilinear, 0)
	coords := quadCoords(0.5, 0.5, 1.0/256, 1.0/256)
	u.SampleQuad(0, &coords, 0, false)
	u.ResetStats()
	if u.Stats().Requests != 0 || u.L0Stats().Accesses() != 0 {
		t.Error("ResetStats incomplete")
	}
}

func TestLODBias(t *testing.T) {
	u, _ := newTestUnit(FilterNearest, 0)
	// 1:1 footprint at lod 0, bias pushes to a higher level. The texture
	// has 9 levels (256 -> 1), so bias 8 lands on the 1x1 level; just
	// verify sampling doesn't crash and stays in range.
	coords := quadCoords(0.5, 0.5, 1.0/256, 1.0/256)
	u.SampleQuad(0, &coords, 100, false)
	if u.Stats().Requests != 4 {
		t.Error("biased sample did not complete")
	}
}
