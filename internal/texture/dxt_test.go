package texture

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPack565RoundTrip(t *testing.T) {
	// Colors representable in 565 survive exactly thanks to bit
	// replication.
	cases := []RGBA{
		{0, 0, 0, 255}, {255, 255, 255, 255}, {255, 0, 0, 255},
		{0, 255, 0, 255}, {0, 0, 255, 255}, {0x84, 0x82, 0x84, 255},
	}
	for _, c := range cases {
		got := unpack565(pack565(c))
		if got != c {
			t.Errorf("565 round trip %v -> %v", c, got)
		}
	}
}

func TestDXT1FlatBlock(t *testing.T) {
	var texels [16]RGBA
	for i := range texels {
		texels[i] = RGBA{100, 150, 200, 255}
	}
	var enc [8]byte
	EncodeDXT1Block(&texels, &enc)
	var dec [16]RGBA
	DecodeDXT1Block(enc[:], &dec)
	for i, c := range dec {
		if absDiff(c.R, 100) > 8 || absDiff(c.G, 150) > 4 || absDiff(c.B, 200) > 8 {
			t.Fatalf("texel %d = %v, want ~(100,150,200)", i, c)
		}
		if c.A != 255 {
			t.Fatalf("texel %d alpha = %d", i, c.A)
		}
	}
}

func TestDXT1TwoColorBlock(t *testing.T) {
	var texels [16]RGBA
	black := RGBA{0, 0, 0, 255}
	white := RGBA{255, 255, 255, 255}
	for i := range texels {
		if i%2 == 0 {
			texels[i] = black
		} else {
			texels[i] = white
		}
	}
	var enc [8]byte
	EncodeDXT1Block(&texels, &enc)
	var dec [16]RGBA
	DecodeDXT1Block(enc[:], &dec)
	for i := range dec {
		want := texels[i]
		if dec[i] != want {
			t.Errorf("texel %d = %v, want %v", i, dec[i], want)
		}
	}
}

func TestDXT1GradientQuality(t *testing.T) {
	// A gradient block must decode within palette-quantization error.
	var texels [16]RGBA
	for i := range texels {
		v := uint8(i * 16)
		texels[i] = RGBA{v, v, v, 255}
	}
	var enc [8]byte
	EncodeDXT1Block(&texels, &enc)
	var dec [16]RGBA
	DecodeDXT1Block(enc[:], &dec)
	for i := range dec {
		// 4 palette entries over a 0..240 ramp: max error ~ half the
		// inter-entry distance (40) plus 565 quantization.
		if absDiff(dec[i].R, texels[i].R) > 48 {
			t.Errorf("texel %d = %v, want ~%v", i, dec[i], texels[i])
		}
	}
}

func TestDXT3AlphaExact(t *testing.T) {
	var texels [16]RGBA
	for i := range texels {
		// DXT3 stores 4-bit alpha: multiples of 17 are exact.
		texels[i] = RGBA{128, 128, 128, uint8((i % 16) * 17)}
	}
	var enc [16]byte
	EncodeDXT3Block(&texels, &enc)
	var dec [16]RGBA
	DecodeDXT3Block(enc[:], &dec)
	for i := range dec {
		if dec[i].A != texels[i].A {
			t.Errorf("texel %d alpha = %d, want %d", i, dec[i].A, texels[i].A)
		}
	}
}

func TestDXT5AlphaEndpoints(t *testing.T) {
	var texels [16]RGBA
	for i := range texels {
		texels[i] = RGBA{50, 60, 70, uint8(i * 17)}
	}
	var enc [16]byte
	EncodeDXT5Block(&texels, &enc)
	var dec [16]RGBA
	DecodeDXT5Block(enc[:], &dec)
	for i := range dec {
		// 8-entry palette over the alpha range: max error about half
		// the palette step (255/7/2 ~ 18) plus rounding.
		if absDiff(dec[i].A, texels[i].A) > 20 {
			t.Errorf("texel %d alpha = %d, want ~%d", i, dec[i].A, texels[i].A)
		}
	}
}

func TestDXT5FlatAlpha(t *testing.T) {
	var texels [16]RGBA
	for i := range texels {
		texels[i] = RGBA{10, 20, 30, 77}
	}
	var enc [16]byte
	EncodeDXT5Block(&texels, &enc)
	var dec [16]RGBA
	DecodeDXT5Block(enc[:], &dec)
	for i := range dec {
		if dec[i].A != 77 {
			t.Errorf("texel %d alpha = %d, want 77", i, dec[i].A)
		}
	}
}

// Property: DXT1 decode of any encode yields colors within palette
// distance of the inputs' extremes (i.e. decode never produces colors
// wildly outside the block's range).
func TestQuickDXT1BoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		var texels [16]RGBA
		lo, hi := uint8(255), uint8(0)
		for i := range texels {
			v := uint8(rng.Intn(256))
			texels[i] = RGBA{v, v, v, 255}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		var enc [8]byte
		EncodeDXT1Block(&texels, &enc)
		var dec [16]RGBA
		DecodeDXT1Block(enc[:], &dec)
		for i := range dec {
			// Worst-case quantization: palette spans [lo,hi] with 4
			// entries; error bounded by half a step plus 565 loss.
			step := (int(hi) - int(lo)) / 3
			bound := step/2 + 16
			if int(absDiff(dec[i].R, texels[i].R)) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func absDiff(a, b uint8) uint8 {
	if a > b {
		return a - b
	}
	return b - a
}
