package texture

import "fmt"

// ProcFunc procedurally generates the texel at (x, y) of mip level lv.
// Procedural textures avoid storing texel arrays for the synthetic game
// content while keeping addressing (and therefore cache and memory
// traffic) exact.
type ProcFunc func(x, y, lv int) RGBA

// Texture is a mipmapped 2D texture resident in simulated GPU memory.
// Content comes either from encoded per-level Data (real storage,
// decoded on fetch) or from a Proc function; both use the same tiled
// compressed-space address layout for traffic accounting.
type Texture struct {
	Name   string
	Format Format
	Width  int
	Height int
	// BaseAddr is the GPU virtual address of mip level 0. Assigned by
	// the device when the texture is created.
	BaseAddr uint64

	levels []levelInfo
	data   [][]byte // per-level encoded bytes; nil for procedural content
	proc   ProcFunc

	// Precomputed addressing constants (see initLayout). Every dimension
	// involved — level sizes, block dims, block bytes, tile shapes — is a
	// power of two, so the per-fetch divisions and modulos of the tiled
	// address computation reduce to shifts and masks resolved at texture
	// creation time.
	bdShift        uint // log2(format block dim)
	twShift        uint // log2(tile width in blocks)
	thShift        uint // log2(tile height in blocks)
	bbShift        uint // log2(format block bytes)
	tileSpanShift  uint // log2(bytes per tile) — 64 for all formats
	twMask, thMask int
}

type levelInfo struct {
	w, h   int
	offset uint64 // byte offset from BaseAddr
	bytes  int

	// Precomputed addressing constants (see initLayout).
	wMask, hMask   int    // wrap masks (w-1, h-1)
	tilesPerRow    int    // compressed-space tiles per block row
	uncBase        uint64 // level base in decompressed (4 B/texel) space
	uncTilesPerRow int    // decompressed-space 4x4 tiles per row
}

// New creates a procedural mipmapped texture. Width and height must be
// positive powers of two.
func New(name string, format Format, w, h int, proc ProcFunc) (*Texture, error) {
	if w <= 0 || h <= 0 || w&(w-1) != 0 || h&(h-1) != 0 {
		return nil, fmt.Errorf("texture %q: dimensions %dx%d must be powers of two", name, w, h)
	}
	t := &Texture{Name: name, Format: format, Width: w, Height: h, proc: proc}
	offset := uint64(0)
	for lw, lh := w, h; ; lw, lh = maxInt(lw/2, 1), maxInt(lh/2, 1) {
		n := format.LevelBytes(lw, lh)
		t.levels = append(t.levels, levelInfo{w: lw, h: lh, offset: offset, bytes: n})
		offset += uint64(n)
		if lw == 1 && lh == 1 {
			break
		}
	}
	t.initLayout()
	return t, nil
}

// initLayout precomputes the shift/mask form of the tiled address
// layout. It changes no address: blockOffset and uncompressedOffset
// produce byte-identical results to the division-based formulation they
// replace (pinned by TestAddressLayoutMatchesReference).
func (t *Texture) initLayout() {
	f := t.Format
	bd := f.BlockDim()
	bb := f.BlockBytes()
	lineBlocks := 64 / bb
	if lineBlocks < 1 {
		lineBlocks = 1
	}
	tw, th := tileShape(lineBlocks)
	t.bdShift = log2u(bd)
	t.twShift, t.thShift = log2u(tw), log2u(th)
	t.twMask, t.thMask = tw-1, th-1
	t.bbShift = log2u(bb)
	t.tileSpanShift = log2u(lineBlocks * bb)
	var uncBase uint64
	for i := range t.levels {
		li := &t.levels[i]
		li.wMask, li.hMask = li.w-1, li.h-1
		blocksW := (li.w + bd - 1) / bd
		li.tilesPerRow = (blocksW + tw - 1) / tw
		li.uncBase = uncBase
		uncBase += uint64(li.w*li.h) * 4
		li.uncTilesPerRow = (li.w + 3) / 4
	}
}

// log2u returns log2(v) for power-of-two v.
func log2u(v int) uint {
	s := uint(0)
	for 1<<s < v {
		s++
	}
	return s
}

// MustNew is New for statically valid dimensions; it panics on error.
func MustNew(name string, format Format, w, h int, proc ProcFunc) *Texture {
	t, err := New(name, format, w, h, proc)
	if err != nil {
		panic(err)
	}
	return t
}

// FromRGBA creates a texture with real storage: the base image is
// encoded into the requested format and a full mip chain is built by
// box-filtering. img must hold w*h texels in row-major order.
func FromRGBA(name string, format Format, w, h int, img []RGBA) (*Texture, error) {
	if len(img) != w*h {
		return nil, fmt.Errorf("texture %q: image has %d texels, want %d", name, len(img), w*h)
	}
	t, err := New(name, format, w, h, nil)
	if err != nil {
		return nil, err
	}
	t.data = make([][]byte, len(t.levels))
	cur := img
	cw, ch := w, h
	for lv := range t.levels {
		t.data[lv] = encodeLevel(format, cw, ch, cur)
		if lv < len(t.levels)-1 {
			cur, cw, ch = downsample(cur, cw, ch)
		}
	}
	return t, nil
}

// UpdateRGBA replaces the texture's content with img, re-encoding the
// full mip chain in place. The handle, dimensions, layout and GPU
// address are untouched, so bound samplers and recorded traces stay
// valid — the resolve path of render-to-texture depends on exactly this
// stability. img must hold Width*Height texels in row-major order.
func (t *Texture) UpdateRGBA(img []RGBA) error {
	if len(img) != t.Width*t.Height {
		return fmt.Errorf("texture %q: image has %d texels, want %d",
			t.Name, len(img), t.Width*t.Height)
	}
	if t.data == nil {
		t.data = make([][]byte, len(t.levels))
	}
	t.proc = nil
	cur := img
	cw, ch := t.Width, t.Height
	for lv := range t.levels {
		t.data[lv] = encodeLevel(t.Format, cw, ch, cur)
		if lv < len(t.levels)-1 {
			cur, cw, ch = downsample(cur, cw, ch)
		}
	}
	return nil
}

// Levels returns the number of mip levels.
func (t *Texture) Levels() int { return len(t.levels) }

// LevelSize returns the dimensions of mip level lv (clamped).
func (t *Texture) LevelSize(lv int) (w, h int) {
	lv = clampInt(lv, 0, len(t.levels)-1)
	return t.levels[lv].w, t.levels[lv].h
}

// TotalBytes returns the storage footprint of the full mip chain.
func (t *Texture) TotalBytes() int {
	n := 0
	for _, l := range t.levels {
		n += l.bytes
	}
	return n
}

// Texel returns the texel value at integer coordinates (x, y) of level
// lv, with wrap addressing, together with the GPU memory address of the
// block that holds it (used by the texture cache).
func (t *Texture) Texel(x, y, lv int) (RGBA, uint64) {
	lv = clampInt(lv, 0, len(t.levels)-1)
	li := &t.levels[lv]
	x &= li.wMask // wrap (dimensions are powers of two)
	y &= li.hMask
	addr := t.BaseAddr + li.offset + t.blockOffset(li, x, y)
	if t.data != nil {
		return t.decodeTexel(lv, x, y), addr
	}
	if t.proc != nil {
		return t.proc(x, y, lv), addr
	}
	return RGBA{}, addr
}

// blockOffset computes the tiled byte offset of the block containing
// texel (x, y) within a level. Blocks are grouped into cache-line-sized
// 2D tiles so that a 64-byte line maps to a compact screen-space
// footprint, as in real GPU texture layouts. All factors are powers of
// two, so the whole computation is shifts and masks over the constants
// initLayout resolved at creation time.
func (t *Texture) blockOffset(li *levelInfo, x, y int) uint64 {
	bx, by := x>>t.bdShift, y>>t.bdShift
	tile := (by>>t.thShift)*li.tilesPerRow + bx>>t.twShift
	within := (by&t.thMask)<<t.twShift + bx&t.twMask
	return uint64(tile)<<t.tileSpanShift + uint64(within)<<t.bbShift
}

// tileShape factors lineBlocks into a near-square power-of-two tile.
func tileShape(lineBlocks int) (tw, th int) {
	tw, th = 1, 1
	for tw*th < lineBlocks {
		if tw <= th {
			tw *= 2
		} else {
			th *= 2
		}
	}
	return tw, th
}

func (t *Texture) decodeTexel(lv, x, y int) RGBA {
	li := &t.levels[lv]
	data := t.data[lv]
	f := t.Format
	switch f {
	case FormatRGBA8:
		i := (y*li.w + x) * 4
		return RGBA{data[i], data[i+1], data[i+2], data[i+3]}
	case FormatL8:
		v := data[y*li.w+x]
		return RGBA{v, v, v, 255}
	default:
		bd := f.BlockDim()
		blocksW := (li.w + bd - 1) / bd
		bi := ((y/bd)*blocksW + x/bd) * f.BlockBytes()
		var texels [16]RGBA
		switch f {
		case FormatDXT1:
			DecodeDXT1Block(data[bi:bi+8], &texels)
		case FormatDXT3:
			DecodeDXT3Block(data[bi:bi+16], &texels)
		default:
			DecodeDXT5Block(data[bi:bi+16], &texels)
		}
		return texels[(y%bd)*bd+(x%bd)]
	}
}

// encodeLevel packs an RGBA image into the storage format. Uncompressed
// levels are stored row-major; compressed levels are stored block
// row-major (decode uses the same order).
func encodeLevel(f Format, w, h int, img []RGBA) []byte {
	switch f {
	case FormatRGBA8:
		out := make([]byte, w*h*4)
		for i, c := range img {
			out[i*4], out[i*4+1], out[i*4+2], out[i*4+3] = c.R, c.G, c.B, c.A
		}
		return out
	case FormatL8:
		out := make([]byte, w*h)
		for i, c := range img {
			out[i] = c.R
		}
		return out
	}
	bd := f.BlockDim()
	blocksW := (w + bd - 1) / bd
	blocksH := (h + bd - 1) / bd
	out := make([]byte, blocksW*blocksH*f.BlockBytes())
	var texels [16]RGBA
	for by := 0; by < blocksH; by++ {
		for bx := 0; bx < blocksW; bx++ {
			for ty := 0; ty < 4; ty++ {
				for tx := 0; tx < 4; tx++ {
					x, y := bx*4+tx, by*4+ty
					if x >= w {
						x = w - 1
					}
					if y >= h {
						y = h - 1
					}
					texels[ty*4+tx] = img[y*w+x]
				}
			}
			off := (by*blocksW + bx) * f.BlockBytes()
			switch f {
			case FormatDXT1:
				var b [8]byte
				EncodeDXT1Block(&texels, &b)
				copy(out[off:], b[:])
			case FormatDXT3:
				var b [16]byte
				EncodeDXT3Block(&texels, &b)
				copy(out[off:], b[:])
			default:
				var b [16]byte
				EncodeDXT5Block(&texels, &b)
				copy(out[off:], b[:])
			}
		}
	}
	return out
}

// downsample box-filters an image to the next mip level.
func downsample(img []RGBA, w, h int) ([]RGBA, int, int) {
	nw, nh := maxInt(w/2, 1), maxInt(h/2, 1)
	out := make([]RGBA, nw*nh)
	for y := 0; y < nh; y++ {
		for x := 0; x < nw; x++ {
			x0, y0 := x*2, y*2
			x1, y1 := minInt(x0+1, w-1), minInt(y0+1, h-1)
			c00 := img[y0*w+x0]
			c10 := img[y0*w+x1]
			c01 := img[y1*w+x0]
			c11 := img[y1*w+x1]
			out[y*nw+x] = RGBA{
				R: uint8((int(c00.R) + int(c10.R) + int(c01.R) + int(c11.R)) / 4),
				G: uint8((int(c00.G) + int(c10.G) + int(c01.G) + int(c11.G)) / 4),
				B: uint8((int(c00.B) + int(c10.B) + int(c01.B) + int(c11.B)) / 4),
				A: uint8((int(c00.A) + int(c10.A) + int(c01.A) + int(c11.A)) / 4),
			}
		}
	}
	return out, nw, nh
}

// Checker returns a procedural checkerboard content function with the
// given cell size in texels.
func Checker(cell int, a, b RGBA) ProcFunc {
	if cell < 1 {
		cell = 1
	}
	return func(x, y, lv int) RGBA {
		c := cell >> lv
		if c < 1 {
			c = 1
		}
		if (x/c+y/c)%2 == 0 {
			return a
		}
		return b
	}
}

// Noise returns a deterministic hash-noise content function. alphaCut in
// [0,256) controls the fraction of texels with alpha below the cut, used
// by alpha-tested materials: a texel's alpha is uniform in [0,256).
func Noise(seed uint32) ProcFunc {
	return func(x, y, lv int) RGBA {
		h := hash3(uint32(x), uint32(y), seed+uint32(lv)*0x9E3779B9)
		return RGBA{
			R: uint8(h), G: uint8(h >> 8), B: uint8(h >> 16), A: uint8(h >> 24),
		}
	}
}

// Flat returns a constant-color content function.
func Flat(c RGBA) ProcFunc {
	return func(x, y, lv int) RGBA { return c }
}

// BlockNoise returns hash noise that is constant over blockDim x
// blockDim texel blocks. Because filtering footprints rarely straddle
// block boundaries, the filtered alpha distribution stays close to the
// raw per-block uniform distribution — which makes alpha-test kill
// fractions controllable: P(alpha < ref) ~ ref/256.
func BlockNoise(seed uint32, blockDim int) ProcFunc {
	if blockDim < 1 {
		blockDim = 1
	}
	return func(x, y, lv int) RGBA {
		b := blockDim >> lv
		if b < 1 {
			b = 1
		}
		h := hash3(uint32(x/b), uint32(y/b), seed+uint32(lv)*0x9E3779B9)
		return RGBA{
			R: uint8(h), G: uint8(h >> 8), B: uint8(h >> 16), A: uint8(h >> 24),
		}
	}
}

func hash3(x, y, z uint32) uint32 {
	h := x*0x8da6b343 + y*0xd8163841 + z*0xcb1ab31f
	h ^= h >> 13
	h *= 0x85ebca6b
	h ^= h >> 16
	return h
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
