package texture

import "testing"

func TestFormatProperties(t *testing.T) {
	cases := []struct {
		f          Format
		compressed bool
		blockDim   int
		blockBytes int
	}{
		{FormatRGBA8, false, 1, 4},
		{FormatL8, false, 1, 1},
		{FormatDXT1, true, 4, 8},
		{FormatDXT3, true, 4, 16},
		{FormatDXT5, true, 4, 16},
	}
	for _, c := range cases {
		if c.f.Compressed() != c.compressed {
			t.Errorf("%v Compressed = %v", c.f, c.f.Compressed())
		}
		if c.f.BlockDim() != c.blockDim {
			t.Errorf("%v BlockDim = %d", c.f, c.f.BlockDim())
		}
		if c.f.BlockBytes() != c.blockBytes {
			t.Errorf("%v BlockBytes = %d", c.f, c.f.BlockBytes())
		}
	}
	if FormatDXT1.BytesPerTexel() != 0.5 {
		t.Errorf("DXT1 bytes/texel = %v", FormatDXT1.BytesPerTexel())
	}
	if FormatDXT1.LevelBytes(256, 256) != 256*256/2 {
		t.Errorf("DXT1 256x256 = %d bytes", FormatDXT1.LevelBytes(256, 256))
	}
	// Non-multiple-of-4 dims round up to whole blocks.
	if FormatDXT1.LevelBytes(1, 1) != 8 {
		t.Errorf("DXT1 1x1 = %d bytes, want 8", FormatDXT1.LevelBytes(1, 1))
	}
}

func TestNewMipChain(t *testing.T) {
	tex := MustNew("t", FormatRGBA8, 256, 128, Flat(RGBA{1, 2, 3, 4}))
	// 256x128 -> ... -> 1x1: levels are max(log2)+1 = 9.
	if tex.Levels() != 9 {
		t.Errorf("levels = %d, want 9", tex.Levels())
	}
	w, h := tex.LevelSize(0)
	if w != 256 || h != 128 {
		t.Errorf("level0 = %dx%d", w, h)
	}
	w, h = tex.LevelSize(8)
	if w != 1 || h != 1 {
		t.Errorf("level8 = %dx%d", w, h)
	}
	// Clamped out-of-range level.
	w, h = tex.LevelSize(99)
	if w != 1 || h != 1 {
		t.Errorf("clamped level = %dx%d", w, h)
	}
}

func TestNewRejectsNonPow2(t *testing.T) {
	if _, err := New("bad", FormatRGBA8, 100, 64, nil); err == nil {
		t.Error("non-power-of-two width accepted")
	}
	if _, err := New("bad", FormatRGBA8, 64, 0, nil); err == nil {
		t.Error("zero height accepted")
	}
}

func TestTotalBytes(t *testing.T) {
	tex := MustNew("t", FormatRGBA8, 4, 4, nil)
	// 4x4*4 + 2x2*4 + 1x1*4 = 64+16+4 = 84.
	if tex.TotalBytes() != 84 {
		t.Errorf("TotalBytes = %d, want 84", tex.TotalBytes())
	}
}

func TestTexelWrapAddressing(t *testing.T) {
	tex := MustNew("t", FormatRGBA8, 8, 8, func(x, y, lv int) RGBA {
		return RGBA{uint8(x), uint8(y), 0, 255}
	})
	c, _ := tex.Texel(3, 5, 0)
	if c.R != 3 || c.G != 5 {
		t.Errorf("texel(3,5) = %v", c)
	}
	// Wrap: x=11 -> 3, y=-3 -> 5.
	c2, _ := tex.Texel(11, 13, 0)
	if c2.R != 3 || c2.G != 5 {
		t.Errorf("wrapped texel = %v", c2)
	}
}

func TestTexelAddressesDistinctPerLevel(t *testing.T) {
	tex := MustNew("t", FormatDXT1, 16, 16, Flat(RGBA{}))
	_, a0 := tex.Texel(0, 0, 0)
	_, a1 := tex.Texel(0, 0, 1)
	if a0 == a1 {
		t.Error("different mip levels share an address")
	}
	// Addresses within one level but different blocks differ too.
	_, b0 := tex.Texel(0, 0, 0)
	_, b1 := tex.Texel(8, 8, 0)
	if b0 == b1 {
		t.Error("different blocks share an address")
	}
	// Same block shares an address.
	_, c0 := tex.Texel(1, 1, 0)
	if b0 != c0 {
		t.Error("texels of the same DXT block should share a block address")
	}
}

func TestFromRGBARoundTrip(t *testing.T) {
	w, h := 8, 8
	img := make([]RGBA, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img[y*w+x] = RGBA{uint8(x * 30), uint8(y * 30), 128, 255}
		}
	}
	tex, err := FromRGBA("data", FormatRGBA8, w, h, img)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c, _ := tex.Texel(x, y, 0)
			if c != img[y*w+x] {
				t.Fatalf("texel(%d,%d) = %v, want %v", x, y, c, img[y*w+x])
			}
		}
	}
	// Level 1 is the box filter of level 0.
	c, _ := tex.Texel(0, 0, 1)
	want := RGBA{15, 15, 128, 255} // avg of (0,30),(30,*) corners
	if absDiff(c.R, want.R) > 1 || absDiff(c.G, want.G) > 1 {
		t.Errorf("mip texel = %v, want ~%v", c, want)
	}
}

func TestFromRGBADXT1Decode(t *testing.T) {
	w, h := 8, 8
	img := make([]RGBA, w*h)
	for i := range img {
		img[i] = RGBA{200, 100, 50, 255}
	}
	tex, err := FromRGBA("dxt", FormatDXT1, w, h, img)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := tex.Texel(3, 3, 0)
	if absDiff(c.R, 200) > 8 || absDiff(c.G, 100) > 4 || absDiff(c.B, 50) > 8 {
		t.Errorf("DXT1 texel = %v, want ~(200,100,50)", c)
	}
}

func TestFromRGBASizeMismatch(t *testing.T) {
	if _, err := FromRGBA("bad", FormatRGBA8, 8, 8, make([]RGBA, 10)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestCheckerProc(t *testing.T) {
	a, b := RGBA{255, 0, 0, 255}, RGBA{0, 0, 255, 255}
	f := Checker(4, a, b)
	if f(0, 0, 0) != a {
		t.Error("checker origin should be color a")
	}
	if f(4, 0, 0) != b {
		t.Error("checker (4,0) should be color b")
	}
	if f(4, 4, 0) != a {
		t.Error("checker (4,4) should be color a")
	}
	// At a deeper mip the cell size shrinks.
	if f(1, 0, 2) != b {
		t.Error("mip-2 checker (1,0) should be color b")
	}
}

func TestNoiseDeterministic(t *testing.T) {
	f := Noise(7)
	if f(3, 4, 0) != f(3, 4, 0) {
		t.Error("noise not deterministic")
	}
	if f(3, 4, 0) == f(4, 3, 0) {
		t.Error("noise suspiciously symmetric") // extremely unlikely
	}
	g := Noise(8)
	if f(3, 4, 0) == g(3, 4, 0) {
		t.Error("different seeds should differ")
	}
}

func TestTileShape(t *testing.T) {
	cases := []struct{ blocks, tw, th int }{
		{16, 4, 4}, {8, 4, 2}, {4, 2, 2}, {1, 1, 1}, {64, 8, 8},
	}
	for _, c := range cases {
		tw, th := tileShape(c.blocks)
		if tw != c.tw || th != c.th {
			t.Errorf("tileShape(%d) = %dx%d, want %dx%d", c.blocks, tw, th, c.tw, c.th)
		}
	}
}
