package texture

import "testing"

// refBlockOffset is the original division-based tiled-address
// computation, kept as the oracle for the shift/mask form initLayout
// precomputes.
func refBlockOffset(t *Texture, li *levelInfo, x, y int) uint64 {
	f := t.Format
	bd := f.BlockDim()
	bx, by := x/bd, y/bd
	blocksW := (li.w + bd - 1) / bd
	lineBlocks := 64 / f.BlockBytes()
	if lineBlocks < 1 {
		lineBlocks = 1
	}
	tw, th := tileShape(lineBlocks)
	tilesPerRow := (blocksW + tw - 1) / tw
	tile := (by/th)*tilesPerRow + bx/tw
	within := (by%th)*tw + bx%tw
	return uint64((tile*lineBlocks + within) * f.BlockBytes())
}

// refUncompressedOffset is the original per-fetch level-walk form of the
// decompressed-space address.
func refUncompressedOffset(t *Texture, x, y, lv int) uint64 {
	lv = clampInt(lv, 0, len(t.levels)-1)
	li := &t.levels[lv]
	x &= li.w - 1
	y &= li.h - 1
	var base uint64
	for i := 0; i < lv; i++ {
		base += uint64(t.levels[i].w*t.levels[i].h) * 4
	}
	tilesPerRow := (li.w + 3) / 4
	tile := (y/4)*tilesPerRow + x/4
	within := (y%4)*4 + x%4
	return base + uint64(tile*64+within*4)
}

// TestAddressLayoutMatchesReference sweeps every texel of every mip
// level across all formats (including non-square shapes, where the mip
// chain clamps one axis to 1 early) and demands the precomputed
// shift/mask addressing match the division-based reference exactly.
func TestAddressLayoutMatchesReference(t *testing.T) {
	shapes := []struct{ w, h int }{
		{64, 64}, {128, 32}, {8, 256}, {1, 1}, {4, 4},
	}
	formats := []Format{FormatRGBA8, FormatL8, FormatDXT1, FormatDXT3, FormatDXT5}
	for _, f := range formats {
		for _, sh := range shapes {
			tex := MustNew("addr", f, sh.w, sh.h, Flat(RGBA{}))
			for lv := range tex.levels {
				li := &tex.levels[lv]
				for y := 0; y < li.h; y++ {
					for x := 0; x < li.w; x++ {
						if got, want := tex.blockOffset(li, x, y), refBlockOffset(tex, li, x, y); got != want {
							t.Fatalf("%v %dx%d lv%d (%d,%d): blockOffset = %d, reference %d",
								f, sh.w, sh.h, lv, x, y, got, want)
						}
						if got, want := tex.uncompressedOffset(x, y, lv), refUncompressedOffset(tex, x, y, lv); got != want {
							t.Fatalf("%v %dx%d lv%d (%d,%d): uncompressedOffset = %d, reference %d",
								f, sh.w, sh.h, lv, x, y, got, want)
						}
					}
				}
				// Out-of-range coordinates must wrap identically too.
				for _, xy := range [][2]int{{-1, -1}, {li.w, li.h}, {li.w*3 + 1, li.h*5 + 2}} {
					x, y := xy[0]&li.wMask, xy[1]&li.hMask
					if got, want := tex.blockOffset(li, x, y), refBlockOffset(tex, li, x, y); got != want {
						t.Fatalf("%v lv%d wrap (%d,%d): blockOffset = %d, reference %d",
							f, lv, x, y, got, want)
					}
					if got, want := tex.uncompressedOffset(xy[0], xy[1], lv), refUncompressedOffset(tex, xy[0], xy[1], lv); got != want {
						t.Fatalf("%v lv%d wrap (%d,%d): uncompressedOffset = %d, reference %d",
							f, lv, xy[0], xy[1], got, want)
					}
				}
			}
		}
	}
}
