package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestDeterministicDecisions pins the reproducibility contract: two
// injectors with the same seed and rules, fed the same operation
// sequence, make identical decisions and counts.
func TestDeterministicDecisions(t *testing.T) {
	rules := []Rule{
		{Site: FSWrite, Kind: Err, Prob: 0.3},
		{Site: FSRead, Kind: Corrupt, Prob: 0.5, After: 2, Count: 3},
		{Site: Exec, Kind: Slow, Prob: 0.1},
	}
	sequence := []Site{FSWrite, FSRead, FSWrite, Exec, FSRead, FSRead, FSRead,
		FSWrite, Exec, FSRead, FSWrite, FSRead, Exec, FSWrite, FSRead}

	run := func() ([]string, map[Site]int64) {
		in := New(42, rules...)
		var got []string
		for _, s := range sequence {
			if f := in.Decide(s); f != nil {
				got = append(got, string(f.Site)+":"+string(f.Kind))
			} else {
				got = append(got, "-")
			}
		}
		return got, in.Counts()
	}
	a, ca := run()
	b, cb := run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different decisions:\n%v\n%v", a, b)
	}
	if !reflect.DeepEqual(ca, cb) {
		t.Errorf("same seed, different counts: %v vs %v", ca, cb)
	}
	var n int64
	for _, v := range ca {
		n += v
	}
	in := New(42, rules...)
	for _, s := range sequence {
		in.Decide(s)
	}
	if in.Total() != n {
		t.Errorf("Total %d != summed counts %d", in.Total(), n)
	}
}

// TestRuleGating pins After and Count: a Prob-1 rule fires exactly
// Count times, starting after the After'th operation.
func TestRuleGating(t *testing.T) {
	in := New(1, Rule{Site: FSWrite, Kind: Err, Prob: 1, After: 2, Count: 2})
	var fired []int
	for i := 1; i <= 8; i++ {
		if in.Decide(FSWrite) != nil {
			fired = append(fired, i)
		}
	}
	if !reflect.DeepEqual(fired, []int{3, 4}) {
		t.Errorf("fired at ops %v, want [3 4]", fired)
	}
}

// TestNilInjectorNeverInjects pins that a nil injector is a working
// no-op everywhere.
func TestNilInjectorNeverInjects(t *testing.T) {
	var in *Injector
	if in.Decide(FSWrite) != nil {
		t.Error("nil injector injected")
	}
	if in.Total() != 0 || len(in.Counts()) != 0 {
		t.Error("nil injector counted")
	}
	r := WrapReader(strings.NewReader("hello"), in, TraceRead)
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "hello" {
		t.Errorf("nil-injector reader: %q, %v", got, err)
	}
	select {
	case <-in.Released():
	default:
		t.Error("nil injector's Released() should be closed")
	}
}

func TestParsePlan(t *testing.T) {
	rules, err := ParsePlan("fs_write:error:0.05, exec:slow:0.1, http:reset:1:2:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Site: FSWrite, Kind: Err, Prob: 0.05},
		{Site: Exec, Kind: Slow, Prob: 0.1},
		{Site: HTTP, Kind: Reset, Prob: 1, Count: 2, After: 3},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Errorf("ParsePlan = %+v, want %+v", rules, want)
	}
	for _, bad := range []string{"", "fs_write:error", "nosite:error:1",
		"fs_write:nokind:1", "fs_write:error:2", "fs_write:error:1:x", "fs_write:error:1:1:-2"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestReaderKinds(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 64)

	t.Run("error", func(t *testing.T) {
		in := New(7, Rule{Site: TraceRead, Kind: Err, Prob: 1})
		_, err := io.ReadAll(WrapReader(bytes.NewReader(data), in, TraceRead))
		if !IsInjected(err) {
			t.Errorf("want injected error, got %v", err)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		in := New(7, Rule{Site: TraceRead, Kind: Corrupt, Prob: 1, Count: 1})
		got, err := io.ReadAll(WrapReader(bytes.NewReader(data), in, TraceRead))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(data) {
			t.Fatalf("length changed: %d != %d", len(got), len(data))
		}
		diff := 0
		for i := range got {
			if got[i] != data[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("%d corrupted bytes, want exactly 1", diff)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		in := New(7, Rule{Site: TraceRead, Kind: Truncate, Prob: 1})
		got, err := io.ReadAll(WrapReader(bytes.NewReader(data), in, TraceRead))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) >= len(data) || len(got) == 0 {
			t.Errorf("truncated read returned %d of %d bytes", len(got), len(data))
		}
	})
}

func TestFaultyFS(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	data := []byte(`{"payload":"0123456789abcdef"}`)

	t.Run("short write is torn", func(t *testing.T) {
		f := NewFaulty(OS{}, New(3, Rule{Site: FSWrite, Kind: Short, Prob: 1, Count: 1}))
		err := f.WriteFile(path, data, 0o644)
		if !IsInjected(err) {
			t.Fatalf("want injected error, got %v", err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(data)/2 {
			t.Errorf("torn write left %d bytes, want %d", len(got), len(data)/2)
		}
		// The rule is exhausted: the next write goes through whole.
		if err := f.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, _ := f.ReadFile(path); !bytes.Equal(got, data) {
			t.Error("post-fault write did not land")
		}
	})

	t.Run("crash kills everything after", func(t *testing.T) {
		f := NewFaulty(OS{}, New(3, Rule{Site: FSRename, Kind: Crash, Prob: 1}))
		if err := f.WriteFile(path+".tmp", data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := f.Rename(path+".tmp", path+".2"); !errors.Is(err, ErrCrashed) {
			t.Fatalf("rename: %v, want ErrCrashed", err)
		}
		if !f.Crashed() {
			t.Error("filesystem not marked crashed")
		}
		if _, err := f.ReadFile(path); !errors.Is(err, ErrCrashed) {
			t.Errorf("post-crash read: %v, want ErrCrashed", err)
		}
		if err := f.WriteFile(path, data, 0o644); !errors.Is(err, ErrCrashed) {
			t.Errorf("post-crash write: %v, want ErrCrashed", err)
		}
		// The atomic rename never landed.
		if _, err := os.Stat(path + ".2"); !os.IsNotExist(err) {
			t.Error("crashed rename landed")
		}
	})

	t.Run("read corruption flips one bit", func(t *testing.T) {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		f := NewFaulty(OS{}, New(9, Rule{Site: FSRead, Kind: Corrupt, Prob: 1, Count: 1}))
		got, err := f.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, data) {
			t.Error("corrupt read returned clean bytes")
		}
		// The on-disk file is untouched; only the read path lied.
		if disk, _ := os.ReadFile(path); !bytes.Equal(disk, data) {
			t.Error("read-side corruption damaged the file")
		}
	})
}

// TestCrashFSModes pins the kill-point semantics for each mode.
func TestCrashFSModes(t *testing.T) {
	data := []byte(`{"payload":"0123456789abcdef"}`)
	for _, tc := range []struct {
		mode      CrashMode
		wantBytes int
	}{
		{CrashBefore, -1},             // file never appears
		{CrashPartial, len(data) / 2}, // torn prefix
		{CrashAfter, len(data)},       // fully landed, caller still sees the crash
	} {
		dir := t.TempDir()
		path := filepath.Join(dir, "x.json")
		c := &CrashFS{Base: OS{}, CrashOp: 1, Mode: tc.mode}
		if err := c.WriteFile(path, data, 0o644); !errors.Is(err, ErrCrashed) {
			t.Fatalf("mode %d: %v, want ErrCrashed", tc.mode, err)
		}
		got, err := os.ReadFile(path)
		if tc.wantBytes < 0 {
			if !os.IsNotExist(err) {
				t.Errorf("mode %d: file exists with %d bytes", tc.mode, len(got))
			}
		} else if len(got) != tc.wantBytes {
			t.Errorf("mode %d: %d bytes on disk, want %d", tc.mode, len(got), tc.wantBytes)
		}
		// Everything after the kill point is dead.
		if _, err := c.ReadFile(path); !errors.Is(err, ErrCrashed) {
			t.Errorf("mode %d: post-crash read alive: %v", tc.mode, err)
		}
	}
}

// TestCrashFSOpCounting pins that a CrashOp-0 pass counts operations
// without crashing — the matrix's sizing pass.
func TestCrashFSOpCounting(t *testing.T) {
	dir := t.TempDir()
	c := &CrashFS{Base: OS{}}
	path := filepath.Join(dir, "y")
	if err := c.WriteFile(path, []byte("a"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncFile(path); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename(path, path+"2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile(path + "2"); err != nil {
		t.Fatal(err)
	}
	if c.Ops() != 4 {
		t.Errorf("Ops = %d, want 4", c.Ops())
	}
}

func TestRoundTripper(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	t.Run("reset", func(t *testing.T) {
		hc := &http.Client{Transport: &RoundTripper{In: New(5, Rule{Site: HTTP, Kind: Reset, Prob: 1, Count: 1})}}
		if _, err := hc.Post(srv.URL, "text/plain", strings.NewReader("x")); err == nil {
			t.Fatal("injected reset did not fail the request")
		}
		resp, err := hc.Get(srv.URL) // rule exhausted
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	})
	t.Run("unavail", func(t *testing.T) {
		hc := &http.Client{Transport: &RoundTripper{In: New(5, Rule{Site: HTTP, Kind: Unavail, Prob: 1, Count: 1})}}
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("status %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("injected 503 missing Retry-After")
		}
	})
	t.Run("latency", func(t *testing.T) {
		hc := &http.Client{Transport: &RoundTripper{In: New(5,
			Rule{Site: HTTP, Kind: Latency, Prob: 1, Count: 1, Delay: 30 * time.Millisecond})}}
		start := time.Now()
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d := time.Since(start); d < 30*time.Millisecond {
			t.Errorf("latency fault took only %s", d)
		}
	})
}
