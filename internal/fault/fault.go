// Package fault is the deterministic fault-injection layer threaded
// through the characterization service's I/O and execution boundaries:
// a seedable Injector decides, per operation, whether to misbehave, and
// wrappers apply the decision at each boundary — a filesystem for the
// serve spool (fs.go), an http.RoundTripper for the client (http.go),
// and an io.Reader for trace and cache reads (reader.go).
//
// Everything an Injector does is a pure function of its seed, its rules
// and the sequence of operations it observes, so a failing chaos run
// replays exactly from its seed. Injected failures surface as *Error, a
// typed error call sites can classify with errors.As.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Site identifies an injection point. Each site counts its operations
// and its injected faults independently, and the service exports the
// fault counts as gpuchar_serve_faults_<site>.
type Site string

const (
	// FSWrite / FSRename / FSSync / FSRead / FSRemove are the spool
	// filesystem boundaries (fault.Faulty applies them).
	FSWrite  Site = "fs_write"
	FSRename Site = "fs_rename"
	FSSync   Site = "fs_sync"
	FSRead   Site = "fs_read"
	FSRemove Site = "fs_remove"
	// TraceRead is the byte stream feeding the trace decoder.
	TraceRead Site = "trace_read"
	// HTTP is the client transport (fault.RoundTripper).
	HTTP Site = "http"
	// Exec is worker job execution (panics, hangs, slow jobs).
	Exec Site = "exec"
)

// Sites returns every injection site in a fixed order, for metric
// registration.
func Sites() []Site {
	return []Site{FSWrite, FSRename, FSSync, FSRead, FSRemove, TraceRead, HTTP, Exec}
}

// Kind is the failure mode a rule injects. Not every kind is meaningful
// at every site; the wrapper applying the fault maps unknown kinds to
// plain errors.
type Kind string

const (
	// Err fails the operation with a typed error, nothing applied.
	Err Kind = "error"
	// Short applies a prefix of a write, then fails (torn write).
	Short Kind = "short"
	// Corrupt flips one bit in the data a read returns.
	Corrupt Kind = "corrupt"
	// Truncate cuts a read stream short (clean early EOF).
	Truncate Kind = "truncate"
	// Crash kills the filesystem: this operation half-applies and every
	// later one fails with ErrCrashed — a process kill, seen from disk.
	Crash Kind = "crash"
	// Panic panics the executing worker.
	Panic Kind = "panic"
	// Hang blocks execution until the injector is Closed, ignoring
	// context cancellation — the pathology the watchdog exists for.
	Hang Kind = "hang"
	// Slow delays execution by the rule's Delay.
	Slow Kind = "slow"
	// Reset fails an HTTP round trip like a dropped connection.
	Reset Kind = "reset"
	// Unavail synthesizes an HTTP 503 with a Retry-After header.
	Unavail Kind = "unavail"
	// Latency delays an HTTP round trip by the rule's Delay.
	Latency Kind = "latency"
)

// Rule arms one failure mode at one site.
type Rule struct {
	Site Site
	Kind Kind
	// Prob is the chance each operation at the site fires the rule.
	// 1 fires deterministically (no RNG draw), which is how seeded
	// chaos schedules stay reproducible under concurrency.
	Prob float64
	// After lets the first N operations at the site pass untouched.
	After int
	// Count caps the rule's firings; 0 is unlimited.
	Count int
	// Delay parameterizes Slow and Latency (default 10ms).
	Delay time.Duration
}

// Fault is one injection decision.
type Fault struct {
	Site  Site
	Kind  Kind
	Delay time.Duration
}

// Error is the typed error every injected failure surfaces as.
type Error struct {
	Site Site
	Kind Kind
	Op   string // human context: a path, URL or operation name
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s at %s (%s)", e.Kind, e.Site, e.Op)
}

// Timeout and Temporary make *Error a net.Error, so HTTP clients treat
// injected resets like real transient transport failures.
func (e *Error) Timeout() bool   { return false }
func (e *Error) Temporary() bool { return true }

// IsInjected reports whether err came from an injector.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// ErrCrashed is what a crashed filesystem answers to everything.
var ErrCrashed = errors.New("fault: filesystem crashed")

// Injector decides faults from a seed and a rule set. A nil *Injector
// is valid and never injects, so wrappers can be threaded through
// production paths unconditionally. All methods are safe for concurrent
// use; with Prob-1 rules the decision sequence per site is a pure
// function of the per-site operation order.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []ruleState
	ops   map[Site]int64
	count map[Site]int64
	total int64
	stop  chan struct{}
}

type ruleState struct {
	Rule
	fired int
}

// New builds an injector from a seed and its rules.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		ops:   map[Site]int64{},
		count: map[Site]int64{},
		stop:  make(chan struct{}),
	}
	for _, r := range rules {
		if r.Delay <= 0 {
			r.Delay = 10 * time.Millisecond
		}
		in.rules = append(in.rules, ruleState{Rule: r})
	}
	return in
}

// Decide observes one operation at site and returns the fault to apply,
// or nil. The first armed rule wins.
func (in *Injector) Decide(site Site) *Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops[site]++
	for i := range in.rules {
		r := &in.rules[i]
		if r.Site != site || (r.Count > 0 && r.fired >= r.Count) {
			continue
		}
		if in.ops[site] <= int64(r.After) {
			continue
		}
		if r.Prob < 1 && in.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		in.count[site]++
		in.total++
		return &Fault{Site: site, Kind: r.Kind, Delay: r.Delay}
	}
	return nil
}

// Intn draws a deterministic value in [0,n), for corruption positions.
func (in *Injector) Intn(n int) int {
	if in == nil || n <= 1 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// Counts returns the injected-fault tally per site.
func (in *Injector) Counts() map[Site]int64 {
	out := map[Site]int64{}
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for k, v := range in.count {
		out[k] = v
	}
	return out
}

// Total returns how many faults have been injected overall.
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// Released is closed by Close; injected hangs block on it, so tests can
// unstick reaped workers instead of leaking goroutines forever.
func (in *Injector) Released() <-chan struct{} {
	if in == nil {
		closed := make(chan struct{})
		close(closed)
		return closed
	}
	return in.stop
}

// Close releases every injected hang. Safe to call twice.
func (in *Injector) Close() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	select {
	case <-in.stop:
	default:
		close(in.stop)
	}
}

// ParsePlan parses a comma-separated fault plan, the -fault flag's
// syntax: site:kind:prob[:count[:after]] per entry, e.g.
//
//	fs_write:error:0.05,exec:slow:0.1,http:reset:1:2:3
func ParsePlan(plan string) ([]Rule, error) {
	var rules []Rule
	for _, entry := range strings.Split(plan, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 3 || len(parts) > 5 {
			return nil, fmt.Errorf("fault: plan entry %q: want site:kind:prob[:count[:after]]", entry)
		}
		r := Rule{Site: Site(parts[0]), Kind: Kind(parts[1])}
		if !validSite(r.Site) {
			return nil, fmt.Errorf("fault: plan entry %q: unknown site %q", entry, parts[0])
		}
		if !validKind(r.Kind) {
			return nil, fmt.Errorf("fault: plan entry %q: unknown kind %q", entry, parts[1])
		}
		p, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("fault: plan entry %q: probability %q not in [0,1]", entry, parts[2])
		}
		r.Prob = p
		if len(parts) > 3 {
			if r.Count, err = strconv.Atoi(parts[3]); err != nil || r.Count < 0 {
				return nil, fmt.Errorf("fault: plan entry %q: bad count %q", entry, parts[3])
			}
		}
		if len(parts) > 4 {
			if r.After, err = strconv.Atoi(parts[4]); err != nil || r.After < 0 {
				return nil, fmt.Errorf("fault: plan entry %q: bad after %q", entry, parts[4])
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, errors.New("fault: empty plan")
	}
	return rules, nil
}

func validSite(s Site) bool {
	for _, k := range Sites() {
		if s == k {
			return true
		}
	}
	return false
}

func validKind(k Kind) bool {
	switch k {
	case Err, Short, Corrupt, Truncate, Crash, Panic, Hang, Slow, Reset, Unavail, Latency:
		return true
	}
	return false
}
