package fault

import "io"

// WrapReader threads read-side injection into a byte stream: EIO-style
// errors, single-bit flips and truncation, decided per Read call at the
// given site. With a nil injector the stream is returned untouched, so
// production paths wrap unconditionally.
func WrapReader(r io.Reader, in *Injector, site Site) io.Reader {
	if in == nil {
		return r
	}
	return &reader{r: r, in: in, site: site}
}

type reader struct {
	r    io.Reader
	in   *Injector
	site Site
	eof  bool // a truncation fault ends the stream early
}

func (fr *reader) Read(p []byte) (int, error) {
	if fr.eof {
		return 0, io.EOF
	}
	f := fr.in.Decide(fr.site)
	if f == nil {
		return fr.r.Read(p)
	}
	switch f.Kind {
	case Corrupt:
		n, err := fr.r.Read(p)
		if n > 0 {
			bit := fr.in.Intn(n * 8)
			p[bit/8] ^= 1 << (bit % 8)
		}
		return n, err
	case Truncate:
		n, err := fr.r.Read(p)
		if n > 1 {
			n /= 2
		}
		fr.eof = true
		if err != nil && err != io.EOF {
			return n, err
		}
		return n, nil
	default:
		return 0, &Error{Site: fr.site, Kind: f.Kind, Op: "read"}
	}
}
