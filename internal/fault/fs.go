package fault

import (
	"os"
	"sync"
)

// FS is the filesystem boundary the serve spool writes through. It is
// deliberately whole-file (the spool only ever reads and atomically
// replaces small JSON documents), which makes partial-failure semantics
// easy to state: WriteFile either lands data, a prefix of it (torn), or
// nothing.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	// SyncFile fsyncs a written file, SyncDir its directory — the two
	// barriers that make tmp+rename durable across a power cut.
	SyncFile(name string) error
	SyncDir(name string) error
}

// OS is the real filesystem.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                   { return os.Remove(name) }
func (OS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (OS) SyncFile(name string) error                 { return syncPath(name) }
func (OS) SyncDir(name string) error                  { return syncPath(name) }

func syncPath(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Faulty wraps a base filesystem with injection at the FS* sites:
// failed and short (torn) writes, failed rename/remove/fsync, read
// errors, bit flips and truncation on read, and a whole-filesystem
// crash. Decisions come from the injector; a nil injector passes
// everything through.
type Faulty struct {
	Base FS
	In   *Injector

	mu      sync.Mutex
	crashed bool
}

// NewFaulty wraps base with injection.
func NewFaulty(base FS, in *Injector) *Faulty { return &Faulty{Base: base, In: in} }

// Crashed reports whether an injected crash has killed the filesystem.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// check runs the common per-op protocol: dead after a crash, then one
// injection decision.
func (f *Faulty) check(site Site, op string) (*Fault, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	fa := f.In.Decide(site)
	if fa != nil && fa.Kind == Crash {
		f.mu.Lock()
		f.crashed = true
		f.mu.Unlock()
	}
	return fa, nil
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	fa, err := f.check(FSWrite, "mkdir "+path)
	if err != nil {
		return err
	}
	if fa != nil {
		switch fa.Kind {
		case Crash:
			return ErrCrashed
		default:
			return &Error{Site: FSWrite, Kind: fa.Kind, Op: "mkdir " + path}
		}
	}
	return f.Base.MkdirAll(path, perm)
}

func (f *Faulty) WriteFile(name string, data []byte, perm os.FileMode) error {
	fa, err := f.check(FSWrite, name)
	if err != nil {
		return err
	}
	if fa == nil {
		return f.Base.WriteFile(name, data, perm)
	}
	switch fa.Kind {
	case Short:
		_ = f.Base.WriteFile(name, data[:len(data)/2], perm)
		return &Error{Site: FSWrite, Kind: Short, Op: name}
	case Crash:
		// A kill mid-write leaves a torn prefix behind.
		_ = f.Base.WriteFile(name, data[:len(data)/2], perm)
		return ErrCrashed
	default:
		return &Error{Site: FSWrite, Kind: fa.Kind, Op: name}
	}
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	fa, err := f.check(FSRename, newpath)
	if err != nil {
		return err
	}
	if fa != nil {
		if fa.Kind == Crash {
			return ErrCrashed // rename is atomic: a crash means it never landed
		}
		return &Error{Site: FSRename, Kind: fa.Kind, Op: newpath}
	}
	return f.Base.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(name string) error {
	fa, err := f.check(FSRemove, name)
	if err != nil {
		return err
	}
	if fa != nil {
		if fa.Kind == Crash {
			return ErrCrashed
		}
		return &Error{Site: FSRemove, Kind: fa.Kind, Op: name}
	}
	return f.Base.Remove(name)
}

func (f *Faulty) ReadFile(name string) ([]byte, error) {
	fa, err := f.check(FSRead, name)
	if err != nil {
		return nil, err
	}
	if fa == nil {
		return f.Base.ReadFile(name)
	}
	switch fa.Kind {
	case Corrupt:
		data, err := f.Base.ReadFile(name)
		if err != nil || len(data) == 0 {
			return data, err
		}
		data = append([]byte(nil), data...)
		bit := f.In.Intn(len(data) * 8)
		data[bit/8] ^= 1 << (bit % 8)
		return data, nil
	case Truncate:
		data, err := f.Base.ReadFile(name)
		if err != nil || len(data) == 0 {
			return data, err
		}
		return append([]byte(nil), data[:len(data)/2]...), nil
	case Crash:
		return nil, ErrCrashed
	default:
		return nil, &Error{Site: FSRead, Kind: fa.Kind, Op: name}
	}
}

func (f *Faulty) ReadDir(name string) ([]os.DirEntry, error) {
	fa, err := f.check(FSRead, name)
	if err != nil {
		return nil, err
	}
	if fa != nil {
		if fa.Kind == Crash {
			return nil, ErrCrashed
		}
		return nil, &Error{Site: FSRead, Kind: fa.Kind, Op: name}
	}
	return f.Base.ReadDir(name)
}

func (f *Faulty) SyncFile(name string) error { return f.sync(name) }
func (f *Faulty) SyncDir(name string) error  { return f.sync(name) }

func (f *Faulty) sync(name string) error {
	fa, err := f.check(FSSync, name)
	if err != nil {
		return err
	}
	if fa != nil {
		if fa.Kind == Crash {
			return ErrCrashed
		}
		return &Error{Site: FSSync, Kind: fa.Kind, Op: name}
	}
	return f.Base.SyncFile(name)
}

// CrashMode says how the operation at a CrashFS kill point applies.
type CrashMode int

const (
	// CrashBefore kills the process before the operation touches disk.
	CrashBefore CrashMode = iota
	// CrashPartial half-applies a mutating operation: a torn prefix for
	// WriteFile; renames and removes (atomic in the model) do not land.
	CrashPartial
	// CrashAfter applies the operation fully, then kills the process —
	// the caller still sees the crash, as a killed process would.
	CrashAfter
)

// CrashFS crashes at exactly one filesystem operation, for the
// kill-point matrix: run once with CrashOp 0 to count operations, then
// once per (operation, mode) pair. After the kill point every call
// returns ErrCrashed, like a dead process's spool.
type CrashFS struct {
	Base    FS
	CrashOp int // 1-based operation index to crash at; 0 never crashes
	Mode    CrashMode

	mu      sync.Mutex
	n       int
	crashed bool
}

// Ops returns how many operations have been observed.
func (c *CrashFS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// step advances the op counter and reports whether this operation is
// the kill point (and whether the FS was already dead).
func (c *CrashFS) step() (kill bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return false, ErrCrashed
	}
	c.n++
	if c.CrashOp > 0 && c.n == c.CrashOp {
		c.crashed = true
		return true, nil
	}
	return false, nil
}

// mutate applies one mutating operation under the crash protocol:
// partial is the half-applied form (nil = does not land at all).
func (c *CrashFS) mutate(full func() error, partial func() error) error {
	kill, err := c.step()
	if err != nil {
		return err
	}
	if !kill {
		return full()
	}
	switch c.Mode {
	case CrashPartial:
		if partial != nil {
			_ = partial()
		}
	case CrashAfter:
		_ = full()
	}
	return ErrCrashed
}

func (c *CrashFS) MkdirAll(path string, perm os.FileMode) error {
	return c.mutate(func() error { return c.Base.MkdirAll(path, perm) },
		func() error { return c.Base.MkdirAll(path, perm) })
}

func (c *CrashFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return c.mutate(func() error { return c.Base.WriteFile(name, data, perm) },
		func() error { return c.Base.WriteFile(name, data[:len(data)/2], perm) })
}

func (c *CrashFS) Rename(oldpath, newpath string) error {
	return c.mutate(func() error { return c.Base.Rename(oldpath, newpath) }, nil)
}

func (c *CrashFS) Remove(name string) error {
	return c.mutate(func() error { return c.Base.Remove(name) }, nil)
}

func (c *CrashFS) ReadFile(name string) ([]byte, error) {
	kill, err := c.step()
	if err != nil || kill {
		return nil, ErrCrashed
	}
	return c.Base.ReadFile(name)
}

func (c *CrashFS) ReadDir(name string) ([]os.DirEntry, error) {
	kill, err := c.step()
	if err != nil || kill {
		return nil, ErrCrashed
	}
	return c.Base.ReadDir(name)
}

func (c *CrashFS) SyncFile(name string) error {
	return c.mutate(func() error { return c.Base.SyncFile(name) }, nil)
}

func (c *CrashFS) SyncDir(name string) error {
	return c.mutate(func() error { return c.Base.SyncDir(name) }, nil)
}
