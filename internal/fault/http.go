package fault

import (
	"io"
	"net/http"
	"strings"
	"time"
)

// RoundTripper injects transport failures in front of a base
// http.RoundTripper: connection resets (typed *Error, a net.Error),
// synthesized 503s carrying Retry-After, and latency spikes. It is how
// the gpuchard client's retry path is exercised without a flaky server.
type RoundTripper struct {
	Base http.RoundTripper // nil means http.DefaultTransport
	In   *Injector
}

func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	base := rt.Base
	if base == nil {
		base = http.DefaultTransport
	}
	f := rt.In.Decide(HTTP)
	if f == nil {
		return base.RoundTrip(req)
	}
	switch f.Kind {
	case Reset:
		drain(req)
		return nil, &Error{Site: HTTP, Kind: Reset, Op: req.Method + " " + req.URL.Path}
	case Unavail:
		drain(req)
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Retry-After": {"1"}},
			Body:    io.NopCloser(strings.NewReader(`{"error":"injected fault: unavailable"}`)),
			Request: req,
		}, nil
	case Latency:
		select {
		case <-time.After(f.Delay):
		case <-req.Context().Done():
			drain(req)
			return nil, req.Context().Err()
		}
		return base.RoundTrip(req)
	default:
		drain(req)
		return nil, &Error{Site: HTTP, Kind: f.Kind, Op: req.Method + " " + req.URL.Path}
	}
}

// drain consumes and closes the request body, as the RoundTripper
// contract requires when a request is not sent.
func drain(req *http.Request) {
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		_ = req.Body.Close()
	}
}
