package geom

import (
	"gpuchar/internal/metrics"
	"math"
	"testing"

	"gpuchar/internal/gmath"
	"gpuchar/internal/mem"
	"gpuchar/internal/shader"
)

// newTestPipeline builds a pipeline with a pass-through-ish vertex shader
// whose constants c0..c3 hold an identity MVP, so clip pos == input pos.
func newTestPipeline() (*Pipeline, *shader.Program, *mem.Controller) {
	m := shader.NewMachine()
	ident := gmath.Identity()
	for r := 0; r < 4; r++ {
		m.Consts[r] = ident.Row(r)
	}
	memctl := mem.NewController()
	p := NewPipeline(m, memctl)
	return p, shader.BasicTransformVS(), memctl
}

// vbFromPositions builds a vertex buffer with positions and a dummy
// texcoord/color.
func vbFromPositions(pos []gmath.Vec4) *VertexBuffer {
	tex := make([]gmath.Vec4, len(pos))
	col := make([]gmath.Vec4, len(pos))
	for i := range pos {
		tex[i] = gmath.V4(0.5, 0.5, 0, 1)
		col[i] = gmath.V4(1, 1, 1, 1)
	}
	return &VertexBuffer{
		Attribs:     [][]gmath.Vec4{pos, tex, col},
		StrideBytes: 48,
	}
}

var defaultCfg = Config{ViewportW: 100, ViewportH: 100, Cull: CullBack}

func TestPrimitiveTriangleCount(t *testing.T) {
	cases := []struct {
		p    PrimitiveType
		n    int
		want int
	}{
		{TriangleList, 9, 3},
		{TriangleList, 10, 3},
		{TriangleStrip, 9, 7},
		{TriangleStrip, 2, 0},
		{TriangleFan, 9, 7},
		{TriangleFan, 3, 1},
	}
	for _, c := range cases {
		if got := c.p.TriangleCount(c.n); got != c.want {
			t.Errorf("%v.TriangleCount(%d) = %d, want %d", c.p, c.n, got, c.want)
		}
	}
}

func TestPrimitiveString(t *testing.T) {
	if TriangleList.String() != "TL" || TriangleStrip.String() != "TS" ||
		TriangleFan.String() != "TF" {
		t.Error("primitive abbreviations wrong")
	}
}

// A CCW front-facing triangle filling the middle of clip space.
func frontTriangle() []gmath.Vec4 {
	return []gmath.Vec4{
		{X: -0.5, Y: -0.5, Z: 0, W: 1},
		{X: 0.5, Y: -0.5, Z: 0, W: 1},
		{X: 0, Y: 0.5, Z: 0, W: 1},
	}
}

func TestDrawSimpleTriangle(t *testing.T) {
	p, vs, _ := newTestPipeline()
	vb := vbFromPositions(frontTriangle())
	ib := &IndexBuffer{Indices: []uint32{0, 1, 2}, BytesPerIndex: 2}
	tris, st := p.Draw(vb, ib, TriangleList, vs, defaultCfg)
	if len(tris) != 1 {
		t.Fatalf("got %d triangles", len(tris))
	}
	if st.Indices != 3 || st.VerticesShaded != 3 || st.TrianglesAssembled != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.TrianglesTraversed != 1 || st.TrianglesClipped != 0 || st.TrianglesCulled != 0 {
		t.Errorf("classification = %+v", st)
	}
	// Viewport mapping: (-0.5,-0.5) -> (25,25).
	v0 := tris[0].V[0]
	if v0.X != 25 || v0.Y != 25 {
		t.Errorf("screen v0 = (%v,%v), want (25,25)", v0.X, v0.Y)
	}
	if !tris[0].CountsAsTraversed {
		t.Error("single triangle should count as traversed")
	}
}

func TestDrawBackfaceCulled(t *testing.T) {
	p, vs, _ := newTestPipeline()
	pos := frontTriangle()
	// Swap two vertices to flip winding.
	pos[0], pos[1] = pos[1], pos[0]
	vb := vbFromPositions(pos)
	ib := &IndexBuffer{Indices: []uint32{0, 1, 2}, BytesPerIndex: 2}
	tris, st := p.Draw(vb, ib, TriangleList, vs, defaultCfg)
	if len(tris) != 0 || st.TrianglesCulled != 1 {
		t.Errorf("tris=%d stats=%+v", len(tris), st)
	}
	// CullFront keeps it.
	cfg := defaultCfg
	cfg.Cull = CullFront
	tris, st = p.Draw(vb, ib, TriangleList, vs, cfg)
	if len(tris) != 1 || st.TrianglesTraversed != 1 {
		t.Errorf("CullFront: tris=%d stats=%+v", len(tris), st)
	}
	// CullNone keeps everything non-degenerate.
	cfg.Cull = CullNone
	tris, _ = p.Draw(vb, ib, TriangleList, vs, cfg)
	if len(tris) != 1 {
		t.Errorf("CullNone: tris=%d", len(tris))
	}
}

func TestDrawTriviallyClipped(t *testing.T) {
	p, vs, _ := newTestPipeline()
	pos := []gmath.Vec4{
		{X: 5, Y: 0, Z: 0, W: 1},
		{X: 6, Y: 0, Z: 0, W: 1},
		{X: 5, Y: 1, Z: 0, W: 1},
	}
	vb := vbFromPositions(pos)
	ib := &IndexBuffer{Indices: []uint32{0, 1, 2}, BytesPerIndex: 2}
	tris, st := p.Draw(vb, ib, TriangleList, vs, defaultCfg)
	if len(tris) != 0 || st.TrianglesClipped != 1 {
		t.Errorf("tris=%d stats=%+v", len(tris), st)
	}
}

func TestDrawStraddlingTriangleIsClippedToPolygon(t *testing.T) {
	p, vs, _ := newTestPipeline()
	// One vertex far outside the right plane; clipping against x<=w
	// produces a quad -> two screen triangles, one marked traversed.
	pos := []gmath.Vec4{
		{X: -0.5, Y: -0.5, Z: 0, W: 1},
		{X: 3.0, Y: -0.5, Z: 0, W: 1},
		{X: -0.5, Y: 0.5, Z: 0, W: 1},
	}
	vb := vbFromPositions(pos)
	ib := &IndexBuffer{Indices: []uint32{0, 1, 2}, BytesPerIndex: 2}
	tris, st := p.Draw(vb, ib, TriangleList, vs, defaultCfg)
	if st.TrianglesTraversed != 1 {
		t.Errorf("traversed = %d, want 1", st.TrianglesTraversed)
	}
	if len(tris) != 2 {
		t.Fatalf("clipped polygon triangles = %d, want 2", len(tris))
	}
	counts := 0
	for _, tr := range tris {
		if tr.CountsAsTraversed {
			counts++
		}
		for _, v := range tr.V {
			if v.X < -0.01 || v.X > 100.01 {
				t.Errorf("clipped vertex x = %v outside viewport", v.X)
			}
		}
	}
	if counts != 1 {
		t.Errorf("CountsAsTraversed sum = %d, want 1", counts)
	}
}

func TestVertexCacheReuseInList(t *testing.T) {
	p, vs, _ := newTestPipeline()
	// Strip-ordered triangle list over a vertex row: indices
	// (0,1,2),(1,2,3)... -> ~66% hit rate, one shade per new vertex.
	n := 64
	pos := make([]gmath.Vec4, n)
	for i := range pos {
		x := -0.9 + 1.8*float32(i)/float32(n)
		y := float32(0)
		if i%2 == 1 {
			y = 0.2
		}
		pos[i] = gmath.V4(x, y, 0, 1)
	}
	var idx []uint32
	for i := 0; i+2 < n; i++ {
		if i%2 == 0 {
			idx = append(idx, uint32(i), uint32(i+1), uint32(i+2))
		} else {
			idx = append(idx, uint32(i+1), uint32(i), uint32(i+2))
		}
	}
	vb := vbFromPositions(pos)
	ib := &IndexBuffer{Indices: idx, BytesPerIndex: 2}
	_, st := p.Draw(vb, ib, TriangleList, vs, defaultCfg)
	if st.VerticesShaded != int64(n) {
		t.Errorf("shaded = %d, want %d (each vertex once)", st.VerticesShaded, n)
	}
	hitRate := 1 - float64(st.VerticesShaded)/float64(st.Indices)
	if hitRate < 0.6 {
		t.Errorf("vertex cache hit rate = %v, want >= 0.6", hitRate)
	}
}

func TestStripAndFanAssembly(t *testing.T) {
	p, vs, _ := newTestPipeline()
	// A 4-vertex strip = 2 triangles; winding of the odd triangle is
	// flipped so both survive backface culling.
	pos := []gmath.Vec4{
		{X: -0.5, Y: -0.5, Z: 0, W: 1},
		{X: 0.5, Y: -0.5, Z: 0, W: 1},
		{X: -0.5, Y: 0.5, Z: 0, W: 1},
		{X: 0.5, Y: 0.5, Z: 0, W: 1},
	}
	vb := vbFromPositions(pos)
	ib := &IndexBuffer{Indices: []uint32{0, 1, 2, 3}, BytesPerIndex: 2}
	tris, st := p.Draw(vb, ib, TriangleStrip, vs, defaultCfg)
	if st.TrianglesAssembled != 2 {
		t.Errorf("strip assembled = %d", st.TrianglesAssembled)
	}
	if len(tris) != 2 {
		t.Errorf("strip traversed = %d triangles", len(tris))
	}

	// A fan around vertex 0.
	fanPos := []gmath.Vec4{
		{X: 0, Y: 0, Z: 0, W: 1},
		{X: 0.5, Y: 0, Z: 0, W: 1},
		{X: 0.35, Y: 0.35, Z: 0, W: 1},
		{X: 0, Y: 0.5, Z: 0, W: 1},
	}
	vb2 := vbFromPositions(fanPos)
	ib2 := &IndexBuffer{Indices: []uint32{0, 1, 2, 3}, BytesPerIndex: 2}
	_, st2 := p.Draw(vb2, ib2, TriangleFan, vs, defaultCfg)
	if st2.TrianglesAssembled != 2 {
		t.Errorf("fan assembled = %d", st2.TrianglesAssembled)
	}
	// In a fan the hub vertex is shaded once.
	if st2.VerticesShaded != 4 {
		t.Errorf("fan shaded = %d, want 4", st2.VerticesShaded)
	}
}

func TestMemoryTrafficAccounting(t *testing.T) {
	p, vs, memctl := newTestPipeline()
	vb := vbFromPositions(frontTriangle())
	ib := &IndexBuffer{Indices: []uint32{0, 1, 2}, BytesPerIndex: 4}
	p.Draw(vb, ib, TriangleList, vs, defaultCfg)
	traffic := memctl.ClientTraffic(mem.ClientVertex)
	// 3 indices * 4B + 3 shaded vertices * 48B stride.
	want := int64(3*4 + 3*48)
	if traffic.ReadBytes != want {
		t.Errorf("vertex traffic = %d, want %d", traffic.ReadBytes, want)
	}
}

func TestPerspectiveVertexScreenMapping(t *testing.T) {
	p, _, _ := newTestPipeline()
	// Use a real perspective matrix.
	proj := gmath.Perspective(float32(math.Pi/2), 1, 1, 100)
	for r := 0; r < 4; r++ {
		p.Machine.Consts[r] = proj.Row(r)
	}
	vs := shader.BasicTransformVS()
	pos := []gmath.Vec4{
		{X: -1, Y: -1, Z: -2, W: 1},
		{X: 1, Y: -1, Z: -2, W: 1},
		{X: 0, Y: 1, Z: -2, W: 1},
	}
	vb := vbFromPositions(pos)
	ib := &IndexBuffer{Indices: []uint32{0, 1, 2}, BytesPerIndex: 2}
	tris, st := p.Draw(vb, ib, TriangleList, vs, defaultCfg)
	if st.TrianglesTraversed != 1 || len(tris) != 1 {
		t.Fatalf("stats=%+v tris=%d", st, len(tris))
	}
	v := tris[0].V[0]
	// Eye-space (-1,-1,-2) with 90-degree fov: ndc (-0.5,-0.5), screen (25,25).
	if math.Abs(float64(v.X-25)) > 0.01 || math.Abs(float64(v.Y-25)) > 0.01 {
		t.Errorf("screen v0 = (%v,%v)", v.X, v.Y)
	}
	if v.InvW != 0.5 {
		t.Errorf("InvW = %v, want 0.5", v.InvW)
	}
	// Depth within [0,1].
	if v.Z < 0 || v.Z > 1 {
		t.Errorf("Z = %v", v.Z)
	}
}

func TestDegenerateTriangleCulled(t *testing.T) {
	p, vs, _ := newTestPipeline()
	pos := []gmath.Vec4{
		{X: 0, Y: 0, Z: 0, W: 1},
		{X: 0.5, Y: 0.5, Z: 0, W: 1},
		{X: 0.25, Y: 0.25, Z: 0, W: 1}, // collinear
	}
	vb := vbFromPositions(pos)
	ib := &IndexBuffer{Indices: []uint32{0, 1, 2}, BytesPerIndex: 2}
	cfg := defaultCfg
	cfg.Cull = CullNone
	tris, st := p.Draw(vb, ib, TriangleList, vs, cfg)
	if len(tris) != 0 || st.TrianglesCulled != 1 {
		t.Errorf("degenerate: tris=%d stats=%+v", len(tris), st)
	}
}

func TestEmptyDraw(t *testing.T) {
	p, vs, _ := newTestPipeline()
	vb := &VertexBuffer{}
	ib := &IndexBuffer{Indices: nil, BytesPerIndex: 2}
	tris, st := p.Draw(vb, ib, TriangleList, vs, defaultCfg)
	if tris != nil || st.Indices != 0 {
		t.Error("empty draw should be a no-op")
	}
}

func TestOutOfRangeIndicesDropped(t *testing.T) {
	p, vs, _ := newTestPipeline()
	vb := vbFromPositions(frontTriangle())
	ib := &IndexBuffer{Indices: []uint32{0, 1, 99}, BytesPerIndex: 2}
	_, st := p.Draw(vb, ib, TriangleList, vs, defaultCfg)
	if st.Indices != 2 {
		t.Errorf("indices processed = %d, want 2", st.Indices)
	}
	if st.TrianglesAssembled != 0 {
		t.Errorf("assembled = %d, want 0", st.TrianglesAssembled)
	}
}

func TestStatsRegister(t *testing.T) {
	a := Stats{Indices: 1, VerticesShaded: 2, TrianglesAssembled: 3,
		TrianglesClipped: 4, TrianglesCulled: 5, TrianglesTraversed: 6}
	r := metrics.NewRegistry()
	a.Register(r, "geom")
	s := r.Snapshot()
	s.Merge(s)
	if r.Load(s) != 0 {
		t.Fatal("snapshot did not round-trip through the registry")
	}
	if a.Indices != 2 || a.TrianglesTraversed != 12 {
		t.Errorf("merged stats = %+v", a)
	}
}

func TestClassificationSumsToAssembled(t *testing.T) {
	p, vs, _ := newTestPipeline()
	// Mix of in, out and backfacing triangles.
	pos := []gmath.Vec4{
		// traversed
		{X: -0.5, Y: -0.5, Z: 0, W: 1}, {X: 0.5, Y: -0.5, Z: 0, W: 1}, {X: 0, Y: 0.5, Z: 0, W: 1},
		// clipped (far right)
		{X: 5, Y: 0, Z: 0, W: 1}, {X: 6, Y: 0, Z: 0, W: 1}, {X: 5, Y: 1, Z: 0, W: 1},
		// culled (flipped winding)
		{X: 0.5, Y: -0.5, Z: 0, W: 1}, {X: -0.5, Y: -0.5, Z: 0, W: 1}, {X: 0, Y: 0.5, Z: 0, W: 1},
	}
	vb := vbFromPositions(pos)
	ib := &IndexBuffer{
		Indices:       []uint32{0, 1, 2, 3, 4, 5, 6, 7, 8},
		BytesPerIndex: 2,
	}
	_, st := p.Draw(vb, ib, TriangleList, vs, defaultCfg)
	sum := st.TrianglesClipped + st.TrianglesCulled + st.TrianglesTraversed
	if sum != st.TrianglesAssembled {
		t.Errorf("clip+cull+traverse = %d, assembled = %d", sum, st.TrianglesAssembled)
	}
	if st.TrianglesClipped != 1 || st.TrianglesCulled != 1 || st.TrianglesTraversed != 1 {
		t.Errorf("stats = %+v", st)
	}
}
