package geom

import (
	"math/rand"
	"testing"
)

// gridIndices builds a rows x cols grid triangle list in row-major order.
func gridIndices(rows, cols int) []uint32 {
	var idx []uint32
	nvx := cols + 1
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v00 := uint32(r*nvx + c)
			idx = append(idx, v00, v00+1, v00+uint32(nvx)+1,
				v00, v00+uint32(nvx)+1, v00+uint32(nvx))
		}
	}
	return idx
}

func TestOptimizePreservesTriangles(t *testing.T) {
	idx := gridIndices(8, 8)
	out := OptimizeForVertexCache(idx, 16)
	if len(out) != len(idx) {
		t.Fatalf("length changed: %d vs %d", len(out), len(idx))
	}
	// Same multiset of triangles (order-insensitive within the list,
	// orientation-preserving within each triangle up to rotation).
	key := func(a, b, c uint32) [3]uint32 {
		// Rotate so the smallest index leads, preserving winding.
		for a > b || a > c {
			a, b, c = b, c, a
		}
		return [3]uint32{a, b, c}
	}
	count := map[[3]uint32]int{}
	for i := 0; i < len(idx); i += 3 {
		count[key(idx[i], idx[i+1], idx[i+2])]++
	}
	for i := 0; i < len(out); i += 3 {
		count[key(out[i], out[i+1], out[i+2])]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("triangle %v count off by %d", k, v)
		}
	}
}

func TestOptimizeImprovesShuffledMesh(t *testing.T) {
	idx := gridIndices(16, 16)
	// Shuffle triangles to destroy locality.
	rng := rand.New(rand.NewSource(7))
	tris := len(idx) / 3
	shuffled := append([]uint32(nil), idx...)
	for i := tris - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		for k := 0; k < 3; k++ {
			shuffled[3*i+k], shuffled[3*j+k] = shuffled[3*j+k], shuffled[3*i+k]
		}
	}
	const cacheSize = 16
	before := CacheMissesOf(shuffled, cacheSize)
	after := CacheMissesOf(OptimizeForVertexCache(shuffled, cacheSize), cacheSize)
	if after >= before {
		t.Fatalf("optimization did not help: %d -> %d misses", before, after)
	}
	// The optimized order should shade close to once per vertex, i.e.
	// push the hit rate above the 2/3 adjacent-triangle bound the paper
	// discusses (Figure 5's "higher ratios").
	vertices := 17 * 17
	if after > vertices*3/2 {
		t.Errorf("optimized misses = %d for %d vertices", after, vertices)
	}
	hitRate := 1 - float64(after)/float64(len(idx))
	if hitRate < 0.67 {
		t.Errorf("optimized hit rate = %.3f, want > 0.67", hitRate)
	}
}

func TestOptimizeDegenerateInputs(t *testing.T) {
	if out := OptimizeForVertexCache(nil, 16); len(out) != 0 {
		t.Error("nil input should return empty")
	}
	one := []uint32{0, 1, 2}
	if out := OptimizeForVertexCache(one, 16); len(out) != 3 {
		t.Error("single triangle mangled")
	}
	// Cache too small to matter: input returned as-is.
	out := OptimizeForVertexCache(gridIndices(2, 2), 2)
	if len(out) != 24 {
		t.Error("tiny-cache path broken")
	}
}

func TestCacheMissesOf(t *testing.T) {
	// Strip-ordered list: one miss per triangle after warm-up.
	var idx []uint32
	for i := 0; i < 100; i++ {
		idx = append(idx, uint32(i), uint32(i+1), uint32(i+2))
	}
	misses := CacheMissesOf(idx, 16)
	if misses != 102 { // every vertex exactly once
		t.Errorf("misses = %d, want 102", misses)
	}
	if CacheMissesOf(idx, 0) != len(idx) {
		t.Error("zero-size cache should miss every index")
	}
}
