// Package geom implements the geometry stages of the rendering pipeline:
// indexed vertex fetch, vertex shading through a post-transform vertex
// cache, primitive assembly for triangle lists, strips and fans,
// homogeneous view-frustum clipping, face culling and the viewport
// transform.
//
// These stages produce the statistics of the paper's §III.B: indices and
// assembled triangles per frame (Figure 6), the percentage of clipped,
// culled and traversed triangles (Table VII), and the vertex cache hit
// rate (Figure 5) whose ~66% bound explains why games use triangle lists
// rather than strips.
package geom

import (
	"fmt"

	"gpuchar/internal/cache"
	"gpuchar/internal/gmath"
	"gpuchar/internal/mem"
	"gpuchar/internal/metrics"
	"gpuchar/internal/shader"
)

// PrimitiveType selects how the index stream is assembled into
// triangles. The paper's benchmarks use only these three (Table V).
type PrimitiveType uint8

// Triangle assembly modes.
const (
	TriangleList PrimitiveType = iota
	TriangleStrip
	TriangleFan
)

// String names the primitive type with the paper's abbreviations.
func (p PrimitiveType) String() string {
	switch p {
	case TriangleList:
		return "TL"
	case TriangleStrip:
		return "TS"
	case TriangleFan:
		return "TF"
	default:
		return fmt.Sprintf("Prim(%d)", uint8(p))
	}
}

// TriangleCount returns the number of triangles assembled from n indices
// under this primitive type — the arithmetic behind the paper's Table V
// "primitives per frame" column.
func (p PrimitiveType) TriangleCount(n int) int {
	switch p {
	case TriangleList:
		return n / 3
	default: // strip or fan
		if n < 3 {
			return 0
		}
		return n - 2
	}
}

// NumVaryings is the number of interpolated attribute slots carried from
// vertex to fragment shading (vertex shader outputs o1..o4; o0 is the
// clip-space position).
const NumVaryings = 4

// VertexBuffer holds per-vertex attributes resident in GPU memory.
// Attribute slot 0 is the object-space position.
type VertexBuffer struct {
	// Attribs[slot][vertex]; all slots must have equal length.
	Attribs [][]gmath.Vec4
	// StrideBytes is the memory footprint of one vertex, used for
	// traffic accounting (up to 16 attributes x 16 bytes in the paper).
	StrideBytes int
	// BaseAddr is the GPU virtual address of the buffer.
	BaseAddr uint64
}

// NumVertices returns the vertex count (0 for an empty buffer).
func (vb *VertexBuffer) NumVertices() int {
	if len(vb.Attribs) == 0 {
		return 0
	}
	return len(vb.Attribs[0])
}

// IndexBuffer is a list of vertex indices plus the per-index byte size,
// which Table III shows is fixed per game middleware (2 or 4 bytes).
type IndexBuffer struct {
	Indices       []uint32
	BytesPerIndex int
	BaseAddr      uint64
}

// ShadedVertex is a post-vertex-shader vertex: clip-space position plus
// varyings.
type ShadedVertex struct {
	ClipPos gmath.Vec4
	Var     [NumVaryings]gmath.Vec4
}

// ScreenVertex is a viewport-transformed vertex ready for
// rasterization. Varyings are pre-multiplied by InvW for
// perspective-correct interpolation.
type ScreenVertex struct {
	X, Y float32 // window coordinates (pixels)
	Z    float32 // depth in [0,1]
	InvW float32
	Var  [NumVaryings]gmath.Vec4 // varying * InvW
}

// Triangle is a screen-space triangle emitted to the rasterizer. The
// vertex order is always counter-clockwise; back-facing triangles kept
// alive by CullNone are re-wound and flagged via FrontFacing, which the
// two-sided stencil test consumes (Doom3/Quake4 shadow volumes).
type Triangle struct {
	V [3]ScreenVertex
	// CountsAsTraversed is false for the extra sub-triangles produced
	// when clipping splits a triangle, so triangle-level statistics
	// count each source triangle once.
	CountsAsTraversed bool
	// FrontFacing is false when the source triangle was back-facing and
	// survived because culling was off.
	FrontFacing bool
}

// Stats accumulates geometry-stage activity.
type Stats struct {
	Indices            int64 // index references processed
	VerticesShaded     int64 // vertex cache misses = vertex shader runs
	TrianglesAssembled int64
	TrianglesClipped   int64 // fully outside the frustum
	TrianglesCulled    int64 // back-facing or zero area
	TrianglesTraversed int64 // sent to the rasterizer
}

// Register binds every counter of s into the registry under prefix —
// the single definition of the geometry counter names. Cross-stage
// accumulation goes through metrics.Snapshot arithmetic, not hand-coded
// Add methods.
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/indices", &s.Indices)
	r.Bind(prefix+"/vertices_shaded", &s.VerticesShaded)
	r.Bind(prefix+"/triangles_assembled", &s.TrianglesAssembled)
	r.Bind(prefix+"/triangles_clipped", &s.TrianglesClipped)
	r.Bind(prefix+"/triangles_culled", &s.TrianglesCulled)
	r.Bind(prefix+"/triangles_traversed", &s.TrianglesTraversed)
}

// add accumulates one draw's counters into the pipeline total.
func (s *Stats) add(o Stats) {
	s.Indices += o.Indices
	s.VerticesShaded += o.VerticesShaded
	s.TrianglesAssembled += o.TrianglesAssembled
	s.TrianglesClipped += o.TrianglesClipped
	s.TrianglesCulled += o.TrianglesCulled
	s.TrianglesTraversed += o.TrianglesTraversed
}

// CullMode selects which triangle facing is discarded.
type CullMode uint8

// Face culling modes.
const (
	CullBack CullMode = iota
	CullFront
	CullNone
)

// Config sets the fixed-function geometry state for a draw.
type Config struct {
	ViewportW int
	ViewportH int
	Cull      CullMode
}

// Pipeline is the geometry engine. It owns the post-transform vertex
// cache and a scratch table of shaded vertices.
type Pipeline struct {
	VCache  *cache.VertexCache
	Machine *shader.Machine
	Memctl  *mem.Controller

	// scratch, reused across draws
	shaded []ShadedVertex
	epoch  []uint32
	gen    uint32

	// stats accumulates across draws; the metrics registry binds to it.
	stats Stats
}

// Stats returns the counters accumulated over all draws.
func (p *Pipeline) Stats() Stats { return p.stats }

// RegisterMetrics binds the pipeline's live counters into r under
// prefix.
func (p *Pipeline) RegisterMetrics(r *metrics.Registry, prefix string) {
	p.stats.Register(r, prefix)
}

// DefaultVertexCacheSize matches the mid-2000s hardware the paper
// simulates (a small FIFO; ATTILA and contemporary GPUs used 16 entries).
const DefaultVertexCacheSize = 16

// NewPipeline creates a geometry pipeline with the given shader machine
// and memory controller (memctl may be nil to skip traffic accounting).
func NewPipeline(m *shader.Machine, memctl *mem.Controller) *Pipeline {
	return &Pipeline{
		VCache:  cache.MustVertexCache(DefaultVertexCacheSize),
		Machine: m,
		Memctl:  memctl,
	}
}

// Draw runs one batch through the geometry pipeline and returns the
// screen triangles to rasterize plus the per-draw statistics. The vertex
// shader program's constants must already be loaded into the Machine.
func (p *Pipeline) Draw(vb *VertexBuffer, ib *IndexBuffer, prim PrimitiveType,
	vs *shader.Program, cfg Config) ([]Triangle, Stats) {

	var st Stats
	nv := vb.NumVertices()
	if nv == 0 || len(ib.Indices) == 0 {
		return nil, st
	}
	p.ensureScratch(nv)
	// A new batch invalidates the post-transform cache: shader state and
	// stream bindings changed.
	p.VCache.Clear()

	// Shade (through the vertex cache) every referenced index.
	shadedIdx := make([]uint32, 0, len(ib.Indices))
	for _, idx := range ib.Indices {
		if int(idx) >= nv {
			continue // out-of-range index: drop, like a defensive driver
		}
		st.Indices++
		if p.Memctl != nil {
			p.Memctl.Read(mem.ClientVertex, int64(ib.BytesPerIndex))
		}
		if !p.VCache.Lookup(idx) {
			p.shadeVertex(vb, idx, vs)
			st.VerticesShaded++
			if p.Memctl != nil {
				p.Memctl.Read(mem.ClientVertex, int64(vb.StrideBytes))
			}
		} else if p.epoch[idx] != p.gen {
			// The FIFO remembers the index from a previous generation of
			// this scratch table; reshade to keep values fresh.
			p.shadeVertex(vb, idx, vs)
		}
		shadedIdx = append(shadedIdx, idx)
	}

	// Assemble primitives and clip/cull/transform.
	tris := assemble(shadedIdx, prim)
	st.TrianglesAssembled += int64(len(tris))
	var out []Triangle
	for _, tri := range tris {
		v0 := &p.shaded[tri[0]]
		v1 := &p.shaded[tri[1]]
		v2 := &p.shaded[tri[2]]
		outcome := p.clipCullEmit(v0, v1, v2, cfg, &out)
		switch outcome {
		case resultClipped:
			st.TrianglesClipped++
		case resultCulled:
			st.TrianglesCulled++
		default:
			st.TrianglesTraversed++
		}
	}
	p.stats.add(st)
	return out, st
}

func (p *Pipeline) ensureScratch(nv int) {
	if cap(p.shaded) < nv {
		p.shaded = make([]ShadedVertex, nv)
		p.epoch = make([]uint32, nv)
	}
	p.shaded = p.shaded[:nv]
	p.epoch = p.epoch[:nv]
	p.gen++
}

func (p *Pipeline) shadeVertex(vb *VertexBuffer, idx uint32, vs *shader.Program) {
	var in [shader.NumInputs]gmath.Vec4
	for slot, data := range vb.Attribs {
		if slot >= shader.NumInputs {
			break
		}
		in[slot] = data[idx]
	}
	var out [shader.NumOutputs]gmath.Vec4
	p.Machine.RunVertex(vs, &in, &out)
	sv := &p.shaded[idx]
	sv.ClipPos = out[0]
	for i := 0; i < NumVaryings; i++ {
		sv.Var[i] = out[1+i]
	}
	p.epoch[idx] = p.gen
}

// assemble converts an index stream to triangles (as index triples).
func assemble(idx []uint32, prim PrimitiveType) [][3]uint32 {
	var tris [][3]uint32
	switch prim {
	case TriangleList:
		for i := 0; i+2 < len(idx); i += 3 {
			tris = append(tris, [3]uint32{idx[i], idx[i+1], idx[i+2]})
		}
	case TriangleStrip:
		for i := 0; i+2 < len(idx); i++ {
			a, b, c := idx[i], idx[i+1], idx[i+2]
			if i%2 == 1 {
				// Flip winding on odd triangles to keep orientation.
				a, b = b, a
			}
			tris = append(tris, [3]uint32{a, b, c})
		}
	case TriangleFan:
		for i := 1; i+1 < len(idx); i++ {
			tris = append(tris, [3]uint32{idx[0], idx[i], idx[i+1]})
		}
	}
	return tris
}

type clipResult uint8

const (
	resultTraversed clipResult = iota
	resultClipped
	resultCulled
)

// clipCullEmit classifies one assembled triangle and appends its screen
// triangles to out when it survives.
func (p *Pipeline) clipCullEmit(v0, v1, v2 *ShadedVertex, cfg Config,
	out *[]Triangle) clipResult {

	c0 := gmath.OutcodeOf(v0.ClipPos)
	c1 := gmath.OutcodeOf(v1.ClipPos)
	c2 := gmath.OutcodeOf(v2.ClipPos)
	if c0&c1&c2 != 0 {
		return resultClipped // trivially outside one plane
	}

	verts := []ShadedVertex{*v0, *v1, *v2}
	if c0|c1|c2 != 0 {
		// Straddles the frustum: Sutherland-Hodgman clip in homogeneous
		// space against all six planes.
		verts = clipPolygon(verts)
		if len(verts) < 3 {
			return resultClipped
		}
	}

	// Project to screen space.
	screen := make([]ScreenVertex, len(verts))
	for i := range verts {
		screen[i] = toScreen(&verts[i], cfg)
	}

	// Face cull using the signed area of the first sub-triangle (the
	// polygon is planar and convex, so all sub-triangles agree).
	area := signedArea(screen[0], screen[1], screen[2])
	front := area > 0
	switch cfg.Cull {
	case CullBack:
		if area <= 0 {
			return resultCulled
		}
	case CullFront:
		if area >= 0 {
			return resultCulled
		}
		// Kept triangles are back-facing: re-wind to CCW for setup.
		reverse(screen)
	default:
		if area == 0 {
			return resultCulled // degenerate
		}
		if !front {
			reverse(screen)
		}
	}

	// Fan-triangulate the clipped polygon.
	for i := 1; i+1 < len(screen); i++ {
		*out = append(*out, Triangle{
			V:                 [3]ScreenVertex{screen[0], screen[i], screen[i+1]},
			CountsAsTraversed: i == 1,
			FrontFacing:       front,
		})
	}
	return resultTraversed
}

func reverse(s []ScreenVertex) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// clipPolygon clips a convex polygon against the six frustum planes in
// homogeneous space.
func clipPolygon(in []ShadedVertex) []ShadedVertex {
	planes := gmath.FrustumPlanes()
	poly := in
	for _, pl := range planes {
		if len(poly) == 0 {
			return nil
		}
		var next []ShadedVertex
		for i := range poly {
			cur := &poly[i]
			prev := &poly[(i+len(poly)-1)%len(poly)]
			dc := pl.Dist(cur.ClipPos)
			dp := pl.Dist(prev.ClipPos)
			if dp >= 0 != (dc >= 0) {
				// Edge crosses the plane: add intersection.
				t := dp / (dp - dc)
				next = append(next, lerpVertex(prev, cur, t))
			}
			if dc >= 0 {
				next = append(next, *cur)
			}
		}
		poly = next
	}
	return poly
}

func lerpVertex(a, b *ShadedVertex, t float32) ShadedVertex {
	var out ShadedVertex
	out.ClipPos = a.ClipPos.Lerp(b.ClipPos, t)
	for i := 0; i < NumVaryings; i++ {
		out.Var[i] = a.Var[i].Lerp(b.Var[i], t)
	}
	return out
}

func toScreen(v *ShadedVertex, cfg Config) ScreenVertex {
	w := v.ClipPos.W
	if w == 0 {
		w = 1e-9
	}
	invW := 1 / w
	ndcX := v.ClipPos.X * invW
	ndcY := v.ClipPos.Y * invW
	ndcZ := v.ClipPos.Z * invW
	sv := ScreenVertex{
		X:    (ndcX*0.5 + 0.5) * float32(cfg.ViewportW),
		Y:    (ndcY*0.5 + 0.5) * float32(cfg.ViewportH),
		Z:    ndcZ*0.5 + 0.5,
		InvW: invW,
	}
	for i := 0; i < NumVaryings; i++ {
		sv.Var[i] = v.Var[i].Scale(invW)
	}
	return sv
}

func signedArea(a, b, c ScreenVertex) float32 {
	return (b.X-a.X)*(c.Y-a.Y) - (c.X-a.X)*(b.Y-a.Y)
}
