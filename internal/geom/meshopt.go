package geom

// Vertex-cache-aware index reordering. The paper (§III.B, Figure 5)
// observes hit rates above the 66% adjacent-triangle bound for some
// scenes and attributes them to meshes whose face order was optimized
// for transparent vertex caching, citing Hoppe (SIGGRAPH '99). This file
// implements a greedy reordering in that family so the effect can be
// measured directly.

// OptimizeForVertexCache reorders the triangles of an indexed triangle
// list to improve post-transform FIFO cache locality. The algorithm is
// a greedy "grow from the cache" strategy: repeatedly pick the triangle
// that needs the fewest vertices not currently resident in a simulated
// FIFO of the given size (breaking ties toward lower-valence vertices so
// fans complete before the hub is evicted), emit it, and update the
// simulated cache.
//
// indices must be a multiple of 3; the returned slice is a permutation
// of the input triangles.
func OptimizeForVertexCache(indices []uint32, cacheSize int) []uint32 {
	n := len(indices) / 3
	if n <= 1 || cacheSize < 3 {
		return append([]uint32(nil), indices...)
	}

	// Adjacency: vertex -> triangles using it.
	maxV := uint32(0)
	for _, v := range indices {
		if v > maxV {
			maxV = v
		}
	}
	valence := make([]int, maxV+1)
	for _, v := range indices {
		valence[v]++
	}
	use := make([][]int32, maxV+1)
	for t := 0; t < n; t++ {
		for k := 0; k < 3; k++ {
			v := indices[3*t+k]
			use[v] = append(use[v], int32(t))
		}
	}

	emitted := make([]bool, n)
	// Simulated FIFO cache.
	fifo := make([]uint32, cacheSize)
	inCache := make(map[uint32]bool, cacheSize)
	head, size := 0, 0
	touch := func(v uint32) {
		if inCache[v] {
			return
		}
		if size == cacheSize {
			delete(inCache, fifo[head])
		} else {
			size++
		}
		fifo[head] = v
		inCache[v] = true
		head = (head + 1) % cacheSize
	}

	// cost returns how many vertices of triangle t are cache misses.
	cost := func(t int) int {
		c := 0
		for k := 0; k < 3; k++ {
			if !inCache[indices[3*t+k]] {
				c++
			}
		}
		return c
	}

	out := make([]uint32, 0, len(indices))
	remaining := n
	cursor := 0 // fallback scan position for restarts
	for remaining > 0 {
		// Candidates: triangles touching any cached vertex.
		best, bestCost, bestVal := -1, 4, 1<<30
		for v := range inCache {
			for _, t32 := range use[v] {
				t := int(t32)
				if emitted[t] {
					continue
				}
				c := cost(t)
				val := valence[indices[3*t]] + valence[indices[3*t+1]] +
					valence[indices[3*t+2]]
				if c < bestCost || (c == bestCost && val < bestVal) {
					best, bestCost, bestVal = t, c, val
				}
			}
		}
		if best < 0 {
			// Cold restart: next unemitted triangle in input order.
			for emitted[cursor] {
				cursor++
			}
			best = cursor
		}
		emitted[best] = true
		remaining--
		for k := 0; k < 3; k++ {
			v := indices[3*best+k]
			out = append(out, v)
			valence[v]--
			touch(v)
		}
	}
	return out
}

// CacheMissesOf counts the vertex shader executions an index stream
// costs under a FIFO post-transform cache of the given size — the
// quantity Figure 5's hit rate is one minus.
func CacheMissesOf(indices []uint32, cacheSize int) int {
	if cacheSize < 1 {
		return len(indices)
	}
	fifo := make([]uint32, cacheSize)
	inCache := make(map[uint32]bool, cacheSize)
	head, size, misses := 0, 0, 0
	for _, v := range indices {
		if inCache[v] {
			continue
		}
		misses++
		if size == cacheSize {
			delete(inCache, fifo[head])
		} else {
			size++
		}
		fifo[head] = v
		inCache[v] = true
		head = (head + 1) % cacheSize
	}
	return misses
}
