module gpuchar

go 1.22
