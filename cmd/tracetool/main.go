// Command tracetool records, inspects and replays API-call traces — the
// GLInterceptor/PIX-player side of the paper's methodology.
//
// Usage:
//
//	tracetool -record doom3.trc -demo "Doom3/trdemo2" -frames 20
//	tracetool -inspect doom3.trc
//	tracetool -replay doom3.trc            # API-level statistics
//	tracetool -replay doom3.trc -simulate  # through the GPU simulator
//	tracetool -verify doom3.trc            # end-to-end validation report
//
// Exit codes: 0 success, 1 failure, 2 usage error, 3 trace format error,
// 4 replay error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gpuchar"
	"gpuchar/internal/cliutil"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/trace"
)

func main() {
	var (
		record   = flag.String("record", "", "record a demo trace to this file")
		demo     = flag.String("demo", "UT2004/Primeval", "demo to record")
		frames   = flag.Int("frames", 10, "frames to record")
		inspect  = flag.String("inspect", "", "print a trace's command histogram")
		replay   = flag.String("replay", "", "replay a trace and print API statistics")
		verify   = flag.String("verify", "", "validate a trace end-to-end (lenient replay) and print the damage report")
		simulate = flag.Bool("simulate", false, "replay through the GPU simulator")
		lenient  = flag.Bool("lenient", false, "skip bad commands during -replay instead of failing fast")
		width    = flag.Int("w", 1024, "framebuffer width")
		height   = flag.Int("h", 768, "framebuffer height")
	)
	flag.Parse()

	opts := options{
		record: *record, inspect: *inspect, replay: *replay, verify: *verify,
		simulate: *simulate, lenient: *lenient,
		frames: *frames, width: *width, height: *height,
	}
	if err := opts.validate(); err != nil {
		usageErr(err.Error())
	}

	switch {
	case *record != "":
		if err := doRecord(*record, *demo, *frames, *width, *height); err != nil {
			fail("record", err)
		}
	case *inspect != "":
		if err := doInspect(*inspect); err != nil {
			fail("inspect", err)
		}
	case *replay != "":
		if err := doReplay(*replay, *simulate, *lenient, *width, *height); err != nil {
			fail("replay", err)
		}
	case *verify != "":
		if err := doVerify(*verify); err != nil {
			fail("verify", err)
		}
	}
}

func usageErr(msg string) {
	fmt.Fprintf(os.Stderr, "tracetool: %s\n", msg)
	flag.Usage()
	os.Exit(cliutil.ExitUsage)
}

// options is the parsed flag set, separated from flag.Parse so the
// usage-validation rules are unit-testable.
type options struct {
	record, inspect, replay, verify string
	simulate, lenient               bool
	frames, width, height           int
}

// validate enforces the usage rules; every violation names the
// offending flag and its value. A non-nil error means exit code 2.
func (o options) validate() error {
	modes := 0
	for _, m := range []string{o.record, o.inspect, o.replay, o.verify} {
		if m != "" {
			modes++
		}
	}
	switch {
	case modes != 1:
		return fmt.Errorf("exactly one of -record, -inspect, -replay, -verify is required (got %d)", modes)
	case o.simulate && o.replay == "":
		return fmt.Errorf("-simulate only applies to -replay")
	case o.lenient && o.replay == "":
		return fmt.Errorf("-lenient only applies to -replay")
	case o.record != "" && o.frames <= 0:
		return cliutil.PositiveFlags(cliutil.Flag{Name: "-frames", Value: o.frames})
	case o.width <= 0 || o.height <= 0:
		return cliutil.PositiveFlags(
			cliutil.Flag{Name: "-w", Value: o.width},
			cliutil.Flag{Name: "-h", Value: o.height})
	}
	return nil
}

// exitCode is the shared taxonomy (1 failure, 3 trace format error,
// 4 replay error); a package variable so tests can pin it by name.
var exitCode = cliutil.ExitCode

func fail(sub string, err error) {
	cliutil.Fail("tracetool", fmt.Errorf("%s: %w", sub, err))
}

func doRecord(path, demo string, frames, w, h int) error {
	prof := gpuchar.ProfileByName(demo)
	if prof == nil {
		return fmt.Errorf("unknown demo %q", demo)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rec, err := trace.NewRecorder(f, prof.API)
	if err != nil {
		return err
	}
	dev := gpuchar.NewDevice(prof.API, gpuchar.NullBackend{})
	dev.SetRecorder(rec)
	wl := gpuchar.NewWorkload(prof, dev, w, h)
	if err := wl.Run(frames); err != nil {
		return err
	}
	if err := rec.Close(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d commands over %d frames to %s (%d bytes)\n",
		rec.Commands(), frames, path, info.Size())
	return nil
}

func doInspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	fmt.Printf("API: %s\n", r.API())
	hist := map[gfxapi.Op]int{}
	total, framesN := 0, 0
	for {
		cmd, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		hist[cmd.Op]++
		total++
		if cmd.Op == gfxapi.OpEndFrame {
			framesN++
		}
	}
	fmt.Printf("%d commands, %d frames\n", total, framesN)
	for op := gfxapi.OpCreateVB; op <= gfxapi.OpResolveTex; op++ {
		if n := hist[op]; n > 0 {
			fmt.Printf("  %-14s %d\n", op, n)
		}
	}
	return nil
}

func doReplay(path string, simulate, lenient bool, w, h int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var backend gpuchar.Backend = gpuchar.NullBackend{}
	var g *gpuchar.GPU
	if simulate {
		g = gpuchar.NewGPU(gpuchar.R520Config(w, h))
		backend = g
	}
	dev := gpuchar.NewDevice(r.API(), backend)
	p := trace.NewPlayer(dev)
	if lenient {
		p.SetMode(trace.Lenient)
	}
	framesN, err := p.Play(r)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d frames\n", framesN)
	if rep := p.Report(); !rep.Clean() {
		fmt.Printf("damage: %s\n", rep.Summary())
	}
	var batches, indices, calls int64
	for _, fr := range dev.Frames() {
		batches += fr.Batches
		indices += fr.Indices
		calls += fr.StateCalls
	}
	fmt.Printf("API: %d batches, %d indices, %d state calls\n",
		batches, indices, calls)
	if g != nil {
		var frags int64
		for _, fr := range g.Frames() {
			frags += fr.Rast.Fragments
		}
		fmt.Printf("simulated: %d fragments rasterized\n", frags)
	}
	return nil
}

// doVerify validates a trace end-to-end: every command is decoded under
// the default limits and replayed leniently into a null backend, and the
// resulting damage report is printed. Unrecoverable stream damage exits
// with the format (3) or replay (4) code; a recoverable-but-damaged
// trace exits 1; a clean trace exits 0.
func doVerify(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	dev := gpuchar.NewDevice(r.API(), gpuchar.NullBackend{})
	p := trace.NewPlayer(dev)
	p.SetMode(trace.Lenient)
	_, playErr := p.Play(r)
	rep := p.Report()
	fmt.Printf("%s: trace v%d, %s\n", path, r.Version(), rep.Summary())
	for _, e := range rep.Errs {
		fmt.Printf("  %v\n", e)
	}
	if playErr != nil {
		return playErr
	}
	if !rep.Clean() {
		return fmt.Errorf("trace is damaged (replayable with -lenient)")
	}
	fmt.Println("ok")
	return nil
}
