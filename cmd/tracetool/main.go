// Command tracetool records, inspects and replays API-call traces — the
// GLInterceptor/PIX-player side of the paper's methodology.
//
// Usage:
//
//	tracetool -record doom3.trc -demo "Doom3/trdemo2" -frames 20
//	tracetool -inspect doom3.trc
//	tracetool -replay doom3.trc            # API-level statistics
//	tracetool -replay doom3.trc -simulate  # through the GPU simulator
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gpuchar"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/trace"
)

func main() {
	var (
		record   = flag.String("record", "", "record a demo trace to this file")
		demo     = flag.String("demo", "UT2004/Primeval", "demo to record")
		frames   = flag.Int("frames", 10, "frames to record")
		inspect  = flag.String("inspect", "", "print a trace's command histogram")
		replay   = flag.String("replay", "", "replay a trace and print API statistics")
		simulate = flag.Bool("simulate", false, "replay through the GPU simulator")
		width    = flag.Int("w", 1024, "framebuffer width")
		height   = flag.Int("h", 768, "framebuffer height")
	)
	flag.Parse()

	switch {
	case *record != "":
		if err := doRecord(*record, *demo, *frames, *width, *height); err != nil {
			fail(err)
		}
	case *inspect != "":
		if err := doInspect(*inspect); err != nil {
			fail(err)
		}
	case *replay != "":
		if err := doReplay(*replay, *simulate, *width, *height); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
	os.Exit(1)
}

func doRecord(path, demo string, frames, w, h int) error {
	prof := gpuchar.ProfileByName(demo)
	if prof == nil {
		return fmt.Errorf("unknown demo %q", demo)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rec, err := trace.NewRecorder(f, prof.API)
	if err != nil {
		return err
	}
	dev := gpuchar.NewDevice(prof.API, gpuchar.NullBackend{})
	dev.SetRecorder(rec)
	wl := gpuchar.NewWorkload(prof, dev, w, h)
	if err := wl.Run(frames); err != nil {
		return err
	}
	if err := rec.Close(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d commands over %d frames to %s (%d bytes)\n",
		rec.Commands(), frames, path, info.Size())
	return nil
}

func doInspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	fmt.Printf("API: %s\n", r.API())
	hist := map[gfxapi.Op]int{}
	total, framesN := 0, 0
	for {
		cmd, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		hist[cmd.Op]++
		total++
		if cmd.Op == gfxapi.OpEndFrame {
			framesN++
		}
	}
	fmt.Printf("%d commands, %d frames\n", total, framesN)
	for op := gfxapi.OpCreateVB; op <= gfxapi.OpEndFrame; op++ {
		if n := hist[op]; n > 0 {
			fmt.Printf("  %-14s %d\n", op, n)
		}
	}
	return nil
}

func doReplay(path string, simulate bool, w, h int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var backend gpuchar.Backend = gpuchar.NullBackend{}
	var g *gpuchar.GPU
	if simulate {
		g = gpuchar.NewGPU(gpuchar.R520Config(w, h))
		backend = g
	}
	dev := gpuchar.NewDevice(r.API(), backend)
	framesN, err := trace.NewPlayer(dev).Play(r)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d frames\n", framesN)
	var batches, indices, calls int64
	for _, fr := range dev.Frames() {
		batches += fr.Batches
		indices += fr.Indices
		calls += fr.StateCalls
	}
	fmt.Printf("API: %d batches, %d indices, %d state calls\n",
		batches, indices, calls)
	if g != nil {
		var frags int64
		for _, fr := range g.Frames() {
			frags += fr.Rast.Fragments
		}
		fmt.Printf("simulated: %d fragments rasterized\n", frags)
	}
	return nil
}
