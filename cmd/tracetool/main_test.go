package main

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"gpuchar/internal/trace"
)

// TestValidateUsage pins the flag-validation rules: exactly which
// combinations are usage errors (exit 2) and that every message names
// the offending flag value.
func TestValidateUsage(t *testing.T) {
	ok := options{replay: "x.trc", frames: 10, width: 1024, height: 768}
	cases := []struct {
		name string
		o    options
		want string // "" = valid; otherwise a substring of the message
	}{
		{"replay ok", ok, ""},
		{"record ok", options{record: "x.trc", frames: 10, width: 640, height: 480}, ""},
		{"no mode", options{frames: 10, width: 1, height: 1}, "got 0"},
		{"two modes", options{record: "a", inspect: "b", frames: 1, width: 1, height: 1}, "got 2"},
		{"simulate without replay", options{inspect: "a", simulate: true, frames: 1, width: 1, height: 1},
			"-simulate only applies to -replay"},
		{"lenient without replay", options{verify: "a", lenient: true, frames: 1, width: 1, height: 1},
			"-lenient only applies to -replay"},
		{"bad frames", options{record: "a", frames: -3, width: 1, height: 1}, "-frames -3"},
		{"bad size", options{replay: "a", frames: 1, width: 0, height: 768}, "-w 0, -h 768"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.o.validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() = nil, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("validate() = %q, want it to contain %q", err, c.want)
			}
		})
	}
}

// TestExitCode pins the exit-code taxonomy (0 success, 1 failure,
// 2 usage, 3 trace format, 4 replay) for the error-driven codes,
// including wrapped errors.
func TestExitCode(t *testing.T) {
	format := &trace.FormatError{Cmd: 3, Err: errors.New("bad magic")}
	replay := &trace.ReplayError{Cmd: 7, Err: errors.New("unknown object")}
	cases := []struct {
		err  error
		want int
	}{
		{errors.New("plain failure"), 1},
		{format, 3},
		{fmt.Errorf("wrapped: %w", format), 3},
		{replay, 4},
		{fmt.Errorf("wrapped: %w", replay), 4},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("exitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
