// Command characterize regenerates the paper's tables and figures from
// the synthetic workloads.
//
// Usage:
//
//	characterize -exp table7            # one experiment
//	characterize -exp all               # everything (slow: full simulation)
//	characterize -exp api               # the API-level tables/figures only
//	characterize -list                  # list experiment ids
//	characterize -exp fig1 -csv out/    # write figure CSVs to a directory
//	characterize -simframes 4 -frames 500 -exp table16
//	characterize -exp all -workers 8    # fan demo renders over 8 goroutines
//	characterize -exp table7 -trace run.json   # Perfetto trace of the run
//	characterize -exp all -listen :9090        # live /metrics, /progress, pprof
//	characterize -exp all -progress 50         # stderr ticker every 50 frames
//	characterize -list-configs                 # named hardware variants
//	characterize -list-demos                   # workload profiles (name, family, passes)
//	characterize -exp table14 -config texl0-half   # run under a variant
//	characterize -sweep r520,texl0-half,texl0-2x   # comparative pivot tables
//	characterize -sweep-diff r520,no-hz            # two-config diff tables
//
// With -listen, the server also mounts the run explorer: the embedded
// UI at /, /api/runs, /api/compare and the /api/events SSE stream, with
// every completed experiment recorded as a run.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"gpuchar"
	"gpuchar/internal/cliutil"
	"gpuchar/internal/explorer"
	"gpuchar/internal/metrics"
	"gpuchar/internal/obsv"
)

// profStop finishes the -cpuprofile (if any) before an error exit:
// cliutil.Fail calls os.Exit, which skips defers, and a truncated
// profile is unreadable.
var profStop = func() {}

func fail(err error) {
	profStop()
	cliutil.Fail("characterize", err)
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (tableN/figN), 'all', or 'api'")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		frames    = flag.Int("frames", 120, "API-level frames per demo")
		simFrames = flag.Int("simframes", 2, "simulated frames per demo")
		width     = flag.Int("w", 1024, "framebuffer width")
		height    = flag.Int("h", 768, "framebuffer height")
		workers   = flag.Int("workers", runtime.NumCPU(),
			"concurrent demo renders (output is identical at any count)")
		tileWorkers = flag.Int("tileworkers", 1,
			"tile-parallel fragment workers inside the simulator; >1 shards cache/memory counters (framebuffer and kill counts stay exact)")
		csvDir  = flag.String("csv", "", "directory for figure CSV output")
		jsonOut = flag.String("json", "",
			"write every counter behind the tables as a gpuchar/metrics/v1 JSON document")
		markdown  = flag.Bool("md", false, "emit tables as markdown")
		keepGoing = flag.Bool("keep-going", false,
			"tolerate failing demos/experiments: emit the surviving tables and report the casualties")
		traceOut = flag.String("trace", "",
			"write a Chrome/Perfetto trace of the whole run (load it at ui.perfetto.dev)")
		traceDir = flag.String("tracedir", "",
			"write one Chrome/Perfetto trace per experiment into this directory")
		traceSample = flag.Int("trace-sample", 1,
			"record 1-in-N fine-grained spans (per-draw, per-worker-drain); structural spans are always recorded")
		listen = flag.String("listen", "",
			"serve /metrics, /progress, /healthz and /debug/pprof on this address (e.g. :9090)")
		progressN = flag.Int("progress", 0,
			"print a progress line (demo, frame, frames/sec) to stderr every N completed frames")
		cpuprofile = flag.String("cpuprofile", "",
			"write a CPU profile of the run to this file (single-run alternative to -listen's /debug/pprof)")
		configName = flag.String("config", "",
			"named hardware config to simulate under (see -list-configs); the default is byte-identical to r520")
		listConfigs = flag.Bool("list-configs", false,
			"list the named hardware configs and exit")
		listDemos = flag.Bool("list-demos", false,
			"list the workload profiles (name, family, pass count) and exit")
		sweepConfigs = flag.String("sweep", "",
			"comma-separated config names: run a local sweep and print per-metric pivot tables (demo rows x config columns)")
		sweepJSON = flag.String("sweep-json", "",
			"write the sweep result as a gpuchar/sweep/v1 JSON document")
		sweepCSV = flag.String("sweep-csv", "",
			"write the sweep result as long-form CSV (config,digest,demo,metric,value)")
		sweepDiff = flag.String("sweep-diff", "",
			"two comma-separated config names: run both and print per-metric diff tables (the /api/compare document)")
	)
	flag.Parse()

	if *listConfigs {
		for _, v := range gpuchar.HWConfigs() {
			fmt.Printf("%-20s %.12s  %s\n", v.Name, v.Digest(), v.Description)
		}
		return
	}

	if *listDemos {
		for _, p := range gpuchar.AllProfiles() {
			passes := fmt.Sprintf("%d pass", p.PassCount())
			if p.PassCount() != 1 {
				passes += "es"
			}
			fmt.Printf("%-24s %-10s %s\n", p.Name, p.Family(), passes)
		}
		return
	}

	if *list {
		for _, e := range gpuchar.Experiments() {
			kind := "api  "
			if e.Micro {
				kind = "micro"
			}
			fmt.Printf("%-8s %s  %s\n", e.ID, kind, e.Title)
		}
		return
	}

	// Usage errors exit 2 and name the offending value.
	if *traceSample < 1 {
		cliutil.Usagef("characterize", "-trace-sample %d must be >= 1", *traceSample)
	}
	if *progressN < 0 {
		cliutil.Usagef("characterize", "-progress %d must be >= 0", *progressN)
	}
	if *traceOut != "" && *traceDir != "" {
		cliutil.Usagef("characterize", "-trace %q and -tracedir %q are mutually exclusive",
			*traceOut, *traceDir)
	}
	if err := cliutil.PositiveFlags(
		cliutil.Flag{Name: "-frames", Value: *frames},
		cliutil.Flag{Name: "-simframes", Value: *simFrames},
		cliutil.Flag{Name: "-w", Value: *width},
		cliutil.Flag{Name: "-h", Value: *height}); err != nil {
		cliutil.Usagef("characterize", "%v", err)
	}
	stopProf, err := cliutil.StartCPUProfile(*cpuprofile)
	if err != nil {
		fail(err)
	}
	profStop = stopProf
	defer stopProf()

	if *sweepConfigs != "" || *sweepDiff != "" {
		if *configName != "" {
			cliutil.Usagef("characterize", "-sweep/-sweep-diff and -config are mutually exclusive")
		}
		if *sweepConfigs != "" && *sweepDiff != "" {
			cliutil.Usagef("characterize", "-sweep and -sweep-diff are mutually exclusive")
		}
		if *sweepDiff != "" {
			runSweepDiff(*sweepDiff, *exp, *frames, *simFrames, *width, *height,
				*tileWorkers, *workers, *markdown)
			return
		}
		runSweep(*sweepConfigs, *exp, *frames, *simFrames, *width, *height,
			*tileWorkers, *workers, *markdown, *sweepJSON, *sweepCSV)
		return
	}

	ctx := gpuchar.NewContext()
	ctx.APIFrames = *frames
	ctx.SimFrames = *simFrames
	ctx.W, ctx.H = *width, *height
	ctx.Workers = *workers
	ctx.TileWorkers = *tileWorkers
	ctx.KeepGoing = *keepGoing
	if *configName != "" {
		v, ok := gpuchar.HWConfigByName(*configName)
		if !ok {
			cliutil.Usagef("characterize", "-config %q is not a known config (see -list-configs)", *configName)
		}
		ctx.HW = &v
	}

	var ids []string
	switch *exp {
	case "all":
		for _, e := range gpuchar.Experiments() {
			ids = append(ids, e.ID)
		}
	case "api":
		for _, e := range gpuchar.Experiments() {
			if !e.Micro {
				ids = append(ids, e.ID)
			}
		}
	default:
		ids = []string{*exp}
	}

	tracker := obsv.NewProgressTracker(len(ids))
	if *progressN > 0 {
		tracker.LogEvery = *progressN
		tracker.LogTo = os.Stderr
	}
	ctx.Progress = tracker

	var tr *obsv.Tracer
	if *traceOut != "" {
		tr = obsv.New(obsv.Options{SampleEvery: *traceSample})
		ctx.Trace = tr
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fail(fmt.Errorf("-tracedir %q: %w", *traceDir, err))
		}
		ctx.TraceDir = *traceDir
		ctx.TraceSample = *traceSample
	}
	if *listen != "" {
		hw := gpuchar.DefaultHWConfig()
		if ctx.HW != nil {
			hw = *ctx.HW
		}
		reg := explorer.NewRegistry(0)
		defer reg.Close()
		// Every finished experiment becomes an explorer run, so the
		// embedded UI, /api/runs and /api/compare work against a live
		// characterization exactly as they do against the daemon.
		ctx.OnExperimentDone = func(id string, snaps []metrics.Snapshot) {
			reg.Record(explorer.Run{
				ID:           id,
				Kind:         explorer.KindExperiment,
				Config:       hw.Name,
				ConfigDigest: hw.Digest(),
				Experiments:  []string{id},
				SimFrames:    *simFrames,
				Snapshots:    snaps,
			})
		}
		tracker.OnFrame = func(demo string, frame int) {
			reg.Publish(explorer.Event{
				Type:  explorer.EventProgress,
				Demo:  demo,
				Frame: frame,
			})
		}
		srv, err := obsv.StartServer(*listen, obsv.ServerSources{
			Snapshots: ctx.LiveSnapshots,
			Progress:  tracker.Snapshot,
			Mount:     func(mux *http.ServeMux) { reg.Mount(mux) },
		})
		if err != nil {
			fail(fmt.Errorf("-listen %q: %w", *listen, err))
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "characterize: explorer + observability server on http://%s\n", srv.Addr)
	}

	results, runErr := gpuchar.RunExperiments(ids, ctx)
	if runErr != nil && !*keepGoing {
		writeTrace(tr, *traceOut)
		fail(runErr)
	}
	for _, res := range results {
		if res == nil {
			continue // failed experiment in a -keep-going run
		}
		for _, t := range res.Tables {
			if *markdown {
				t.Markdown(os.Stdout)
			} else {
				t.Render(os.Stdout)
			}
			fmt.Println()
		}
		for _, f := range res.Figures {
			f.Summary(os.Stdout)
			fmt.Println()
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fail(err)
				}
				path := filepath.Join(*csvDir, f.ID+".csv")
				out, err := os.Create(path)
				if err != nil {
					fail(err)
				}
				f.RenderCSV(out)
				if err := out.Close(); err != nil {
					fail(err)
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
	}
	if *jsonOut != "" {
		out, err := os.Create(*jsonOut)
		if err != nil {
			fail(err)
		}
		werr := ctx.WriteJSON(out)
		if cerr := out.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fail(werr)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	writeTrace(tr, *traceOut)
	if runErr != nil {
		fail(runErr)
	}
}

// runSweep executes a local (config x demo) sweep and renders its
// per-metric pivot tables, plus optional JSON/CSV artifacts. -exp
// narrows the experiments each cell runs ("all" keeps the sweep
// default, the cheapest full-simulation experiment).
func runSweep(configs, exp string, frames, simFrames, width, height,
	tileWorkers, workers int, markdown bool, jsonPath, csvPath string) {

	spec := gpuchar.SweepSpec{
		APIFrames:   frames,
		SimFrames:   simFrames,
		Width:       width,
		Height:      height,
		TileWorkers: tileWorkers,
	}
	for _, name := range strings.Split(configs, ",") {
		if name = strings.TrimSpace(name); name != "" {
			spec.Configs = append(spec.Configs, name)
		}
	}
	if exp != "" && exp != "all" {
		for _, id := range strings.Split(exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				spec.Experiments = append(spec.Experiments, id)
			}
		}
	}
	res, err := gpuchar.RunSweep(spec, gpuchar.LocalSweepRunner{}, gpuchar.SweepOptions{
		Workers: workers,
		Progress: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
		},
	})
	if err != nil {
		fail(err)
	}
	for _, t := range res.PivotTables() {
		if markdown {
			t.Markdown(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	writeSweepArtifact(jsonPath, res.WriteJSON)
	writeSweepArtifact(csvPath, res.WriteCSV)
}

// runSweepDiff characterizes two named configs and prints their
// per-metric diff tables — the same gpuchar/compare/v1 document a live
// daemon serves from /api/compare, built offline. -exp narrows the
// experiments ("all" keeps table14, the cheapest full-simulation one).
func runSweepDiff(configs, exp string, frames, simFrames, width, height,
	tileWorkers, workers int, markdown bool) {

	var names []string
	for _, name := range strings.Split(configs, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	if len(names) != 2 {
		cliutil.Usagef("characterize", "-sweep-diff wants exactly two config names, got %d", len(names))
	}
	ids := []string{"table14"}
	if exp != "" && exp != "all" {
		ids = nil
		for _, id := range strings.Split(exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	runs := make([]*explorer.Run, 2)
	for i, name := range names {
		v, ok := gpuchar.HWConfigByName(name)
		if !ok {
			cliutil.Usagef("characterize", "-sweep-diff %q is not a known config (see -list-configs)", name)
		}
		ctx := gpuchar.NewContext()
		ctx.APIFrames = frames
		ctx.SimFrames = simFrames
		ctx.W, ctx.H = width, height
		ctx.Workers = workers
		ctx.TileWorkers = tileWorkers
		ctx.HW = &v
		fmt.Fprintf(os.Stderr, "sweep-diff: running %s under %s\n", strings.Join(ids, ","), name)
		if _, err := gpuchar.RunExperiments(ids, ctx); err != nil {
			fail(fmt.Errorf("config %s: %w", name, err))
		}
		runs[i] = &explorer.Run{
			ID:           name,
			Kind:         explorer.KindConfig,
			Config:       name,
			ConfigDigest: v.Digest(),
			Experiments:  ids,
			SimFrames:    simFrames,
			Snapshots:    ctx.ExportSnapshots(),
		}
	}
	for _, t := range explorer.Compare(runs[0], runs[1]).Tables() {
		if markdown {
			t.Markdown(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
}

// writeSweepArtifact writes one sweep output file, skipping empty paths.
func writeSweepArtifact(path string, write func(w io.Writer) error) {
	if path == "" {
		return
	}
	out, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	werr := write(out)
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fail(werr)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// writeTrace dumps the shared tracer to path; it runs on success and on
// the abort path alike, so a failed sweep still leaves its trace behind.
func writeTrace(tr *obsv.Tracer, path string) {
	if tr == nil {
		return
	}
	out, err := os.Create(path)
	if err != nil {
		fail(fmt.Errorf("-trace %q: %w", path, err))
	}
	werr := tr.WriteChromeJSON(out)
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fail(fmt.Errorf("-trace %q: %w", path, werr))
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
