// Command characterize regenerates the paper's tables and figures from
// the synthetic workloads.
//
// Usage:
//
//	characterize -exp table7            # one experiment
//	characterize -exp all               # everything (slow: full simulation)
//	characterize -exp api               # the API-level tables/figures only
//	characterize -list                  # list experiment ids
//	characterize -exp fig1 -csv out/    # write figure CSVs to a directory
//	characterize -simframes 4 -frames 500 -exp table16
//	characterize -exp all -workers 8    # fan demo renders over 8 goroutines
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"gpuchar"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (tableN/figN), 'all', or 'api'")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		frames    = flag.Int("frames", 120, "API-level frames per demo")
		simFrames = flag.Int("simframes", 2, "simulated frames per demo")
		width     = flag.Int("w", 1024, "framebuffer width")
		height    = flag.Int("h", 768, "framebuffer height")
		workers   = flag.Int("workers", runtime.NumCPU(),
			"concurrent demo renders (output is identical at any count)")
		tileWorkers = flag.Int("tileworkers", 1,
			"tile-parallel fragment workers inside the simulator; >1 shards cache/memory counters (framebuffer and kill counts stay exact)")
		csvDir  = flag.String("csv", "", "directory for figure CSV output")
		jsonOut = flag.String("json", "",
			"write every counter behind the tables as a gpuchar/metrics/v1 JSON document")
		markdown  = flag.Bool("md", false, "emit tables as markdown")
		keepGoing = flag.Bool("keep-going", false,
			"tolerate failing demos/experiments: emit the surviving tables and report the casualties")
	)
	flag.Parse()

	if *list {
		for _, e := range gpuchar.Experiments() {
			kind := "api  "
			if e.Micro {
				kind = "micro"
			}
			fmt.Printf("%-8s %s  %s\n", e.ID, kind, e.Title)
		}
		return
	}

	ctx := gpuchar.NewContext()
	ctx.APIFrames = *frames
	ctx.SimFrames = *simFrames
	ctx.W, ctx.H = *width, *height
	ctx.Workers = *workers
	ctx.TileWorkers = *tileWorkers
	ctx.KeepGoing = *keepGoing

	var ids []string
	switch *exp {
	case "all":
		for _, e := range gpuchar.Experiments() {
			ids = append(ids, e.ID)
		}
	case "api":
		for _, e := range gpuchar.Experiments() {
			if !e.Micro {
				ids = append(ids, e.ID)
			}
		}
	default:
		ids = []string{*exp}
	}

	results, runErr := gpuchar.RunExperiments(ids, ctx)
	if runErr != nil && !*keepGoing {
		fmt.Fprintf(os.Stderr, "characterize: %v\n", runErr)
		os.Exit(1)
	}
	for _, res := range results {
		if res == nil {
			continue // failed experiment in a -keep-going run
		}
		for _, t := range res.Tables {
			if *markdown {
				t.Markdown(os.Stdout)
			} else {
				t.Render(os.Stdout)
			}
			fmt.Println()
		}
		for _, f := range res.Figures {
			f.Summary(os.Stdout)
			fmt.Println()
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
					os.Exit(1)
				}
				path := filepath.Join(*csvDir, f.ID+".csv")
				out, err := os.Create(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
					os.Exit(1)
				}
				f.RenderCSV(out)
				if err := out.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
	}
	if *jsonOut != "" {
		out, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
			os.Exit(1)
		}
		werr := ctx.WriteJSON(out)
		if cerr := out.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "characterize: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "characterize: %v\n", runErr)
		os.Exit(1)
	}
}
