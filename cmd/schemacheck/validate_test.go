package main

import (
	"encoding/json"
	"strings"
	"testing"

	"gpuchar/internal/explorer"
	"gpuchar/internal/metrics"
)

func parse(t *testing.T, src string) any {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(src))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func repoSchema(t *testing.T) any {
	t.Helper()
	s, err := loadJSON("../../metrics_schema.json")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const validDoc = `{
  "schema": "gpuchar/metrics/v1",
  "snapshots": [
    {
      "labels": {"demo": "Doom3/trdemo2", "frame": "all", "source": "sim"},
      "counters": {"zst/quads_killed_hz": 8713, "cache/tex_l0/hits": 42},
      "gauges": {"api/vs_instr_weighted": 11.5}
    }
  ]
}`

func TestValidDocumentConforms(t *testing.T) {
	errs := Validate(repoSchema(t), parse(t, validDoc))
	if len(errs) != 0 {
		t.Fatalf("valid document rejected: %v", errs)
	}
}

func TestViolationsAreCaught(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"wrong schema id",
			`{"schema": "gpuchar/metrics/v2", "snapshots": [{"labels": {"demo": "d", "frame": "1", "source": "sim"}, "counters": {}}]}`,
			"constant"},
		{"missing snapshots",
			`{"schema": "gpuchar/metrics/v1"}`,
			"missing required key"},
		{"empty snapshots",
			`{"schema": "gpuchar/metrics/v1", "snapshots": []}`,
			"at least 1"},
		{"missing labels",
			`{"schema": "gpuchar/metrics/v1", "snapshots": [{"counters": {}}]}`,
			"missing required key"},
		{"missing frame label",
			`{"schema": "gpuchar/metrics/v1", "snapshots": [{"labels": {"demo": "d", "source": "sim"}, "counters": {}}]}`,
			`missing required key "frame"`},
		{"float counter",
			`{"schema": "gpuchar/metrics/v1", "snapshots": [{"labels": {"demo": "d", "frame": "1", "source": "sim"}, "counters": {"geom/indices": 1.5}}]}`,
			"want integer"},
		{"malformed counter name",
			`{"schema": "gpuchar/metrics/v1", "snapshots": [{"labels": {"demo": "d", "frame": "1", "source": "sim"}, "counters": {"Bad Name": 1}}]}`,
			"unexpected key"},
		{"unknown top-level key",
			`{"schema": "gpuchar/metrics/v1", "extra": 1, "snapshots": [{"labels": {"demo": "d", "frame": "1", "source": "sim"}, "counters": {}}]}`,
			"unexpected key"},
	}
	schema := repoSchema(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := Validate(schema, parse(t, tc.doc))
			if len(errs) == 0 {
				t.Fatalf("document accepted, want violation matching %q", tc.wantErr)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e, tc.wantErr) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no violation matching %q in %v", tc.wantErr, errs)
			}
		})
	}
}

// TestCompareDocumentConforms validates a real explorer.Compare output
// against compare_schema.json — the same gate CI applies to a live
// daemon's /api/compare response.
func TestCompareDocumentConforms(t *testing.T) {
	schema, err := loadJSON("../../compare_schema.json")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id, config, digest string, hz int64) *explorer.Run {
		reg := metrics.NewRegistry()
		var in, killed int64 = 1000, hz
		reg.Bind("zst/quads_in", &in)
		reg.Bind("zst/quads_killed_hz", &killed)
		return &explorer.Run{
			ID: id, Kind: explorer.KindJob, Config: config, ConfigDigest: digest,
			SimFrames: 1,
			Snapshots: []metrics.Snapshot{reg.Snapshot().WithLabels(
				"demo", "Doom3/trdemo2", "source", "sim", "frame", "all")},
		}
	}
	doc := explorer.Compare(
		mk("ra", "r520", "aaaa1111aaaa1111", 200),
		mk("rb", "no-hz", "bbbb2222bbbb2222", 0))
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if errs := Validate(schema, parse(t, string(raw))); len(errs) != 0 {
		t.Fatalf("compare document rejected: %v", errs)
	}
}
