package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strings"
)

// loadJSON parses a file into the generic JSON object model, keeping
// numbers as json.Number so integer vs float survives the round trip.
func loadJSON(path string) (any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

// Validate checks doc against schema and returns every violation found,
// each prefixed with the JSON path of the offending value.
func Validate(schema, doc any) []string {
	var errs []string
	validate(schema, doc, "$", &errs)
	return errs
}

func validate(schema, doc any, path string, errs *[]string) {
	s, ok := schema.(map[string]any)
	if !ok {
		*errs = append(*errs, fmt.Sprintf("%s: schema node is not an object", path))
		return
	}

	if t, ok := s["type"].(string); ok && !hasType(doc, t) {
		*errs = append(*errs, fmt.Sprintf("%s: want %s, got %s", path, t, typeName(doc)))
		return
	}
	if c, ok := s["const"]; ok && fmt.Sprint(c) != fmt.Sprint(doc) {
		*errs = append(*errs, fmt.Sprintf("%s: want constant %v, got %v", path, c, doc))
	}

	switch v := doc.(type) {
	case map[string]any:
		validateObject(s, v, path, errs)
	case []any:
		validateArray(s, v, path, errs)
	}
}

func validateObject(s map[string]any, obj map[string]any, path string, errs *[]string) {
	if req, ok := s["required"].([]any); ok {
		for _, r := range req {
			key, _ := r.(string)
			if _, present := obj[key]; !present {
				*errs = append(*errs, fmt.Sprintf("%s: missing required key %q", path, key))
			}
		}
	}
	props, _ := s["properties"].(map[string]any)
	patterns, _ := s["patternProperties"].(map[string]any)

	for key, val := range obj {
		childPath := path + "." + key
		if sub, ok := props[key]; ok {
			validate(sub, val, childPath, errs)
			continue
		}
		if sub, ok := matchPattern(patterns, key); ok {
			validate(sub, val, childPath, errs)
			continue
		}
		switch extra := s["additionalProperties"].(type) {
		case bool:
			if !extra {
				*errs = append(*errs, fmt.Sprintf("%s: unexpected key %q", path, key))
			}
		case map[string]any:
			validate(extra, val, childPath, errs)
		}
	}
}

func matchPattern(patterns map[string]any, key string) (any, bool) {
	for pat, sub := range patterns {
		if re, err := regexp.Compile(pat); err == nil && re.MatchString(key) {
			return sub, true
		}
	}
	return nil, false
}

func validateArray(s map[string]any, arr []any, path string, errs *[]string) {
	if min, ok := s["minItems"].(json.Number); ok {
		if n, err := min.Int64(); err == nil && int64(len(arr)) < n {
			*errs = append(*errs, fmt.Sprintf("%s: has %d items, want at least %d", path, len(arr), n))
		}
	}
	if items, ok := s["items"]; ok {
		for i, v := range arr {
			validate(items, v, fmt.Sprintf("%s[%d]", path, i), errs)
		}
	}
}

// hasType reports whether v matches the JSON Schema type name t.
// "integer" means a number with no fractional or exponent part.
func hasType(v any, t string) bool {
	switch t {
	case "object":
		_, ok := v.(map[string]any)
		return ok
	case "array":
		_, ok := v.([]any)
		return ok
	case "string":
		_, ok := v.(string)
		return ok
	case "number":
		_, ok := v.(json.Number)
		return ok
	case "integer":
		n, ok := v.(json.Number)
		if !ok {
			return false
		}
		_, err := n.Int64()
		return err == nil && !strings.ContainsAny(n.String(), ".eE")
	case "boolean":
		_, ok := v.(bool)
		return ok
	case "null":
		return v == nil
	}
	return false
}

func typeName(v any) string {
	switch v.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case string:
		return "string"
	case json.Number:
		return "number"
	case bool:
		return "boolean"
	case nil:
		return "null"
	}
	return fmt.Sprintf("%T", v)
}
