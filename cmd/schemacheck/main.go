// Command schemacheck validates a gpuchar metrics JSON export against
// the checked-in schema (metrics_schema.json at the repo root). It
// implements the small JSON-Schema subset that schema actually uses —
// type, const, required, properties, additionalProperties,
// patternProperties, items, minItems — with no dependencies, so CI can
// gate `characterize -json` output without network access:
//
//	go run ./cmd/characterize -exp table3 -json /tmp/metrics.json
//	go run ./cmd/schemacheck -schema metrics_schema.json /tmp/metrics.json
//
// Exit status is 0 when the document conforms, 1 otherwise (every
// violation is reported with its JSON path).
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	schemaPath := flag.String("schema", "metrics_schema.json", "schema file to validate against")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: schemacheck [-schema file] <metrics.json>\n")
		os.Exit(2)
	}

	schema, err := loadJSON(*schemaPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schemacheck: schema: %v\n", err)
		os.Exit(2)
	}
	doc, err := loadJSON(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "schemacheck: document: %v\n", err)
		os.Exit(1)
	}

	errs := Validate(schema, doc)
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "schemacheck: %s\n", e)
		}
		fmt.Fprintf(os.Stderr, "schemacheck: %s: %d violation(s)\n", flag.Arg(0), len(errs))
		os.Exit(1)
	}
	fmt.Printf("schemacheck: %s conforms to %s\n", flag.Arg(0), *schemaPath)
}
