package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpuchar/internal/fault"
)

// TestRetryOn429HonorsRetryAfter pins the client backoff loop: 429
// backpressure with Retry-After is retried (waiting at least the
// server's hint) until the submit lands.
func TestRetryOn429HonorsRetryAfter(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"serve: queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(`{"id":"j0001-abcd","state":"queued"}`))
	}))
	defer srv.Close()

	c := &client{base: srv.URL, hc: srv.Client(), retries: 5, maxWait: 30 * time.Second}
	body, err := c.doRetry(http.MethodPost, "/jobs", "application/json", []byte(`{}`), http.StatusAccepted)
	if err != nil {
		t.Fatalf("doRetry: %v", err)
	}
	if !strings.Contains(string(body), "j0001-abcd") {
		t.Errorf("unexpected body %q", body)
	}
	if n := atomic.LoadInt32(&calls); n != 3 {
		t.Errorf("server saw %d calls; want 3 (two 429s then accept)", n)
	}
}

// TestRetrySurvivesConnectionResets pins transport-level resilience:
// injected connection resets are retried and the request eventually
// lands, with the full body replayed each attempt.
func TestRetrySurvivesConnectionResets(t *testing.T) {
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf := make([]byte, 64)
		n, _ := r.Body.Read(buf)
		got.Store(string(buf[:n]))
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(`{"id":"j0001-abcd"}`))
	}))
	defer srv.Close()

	inj := fault.New(3, fault.Rule{Site: fault.HTTP, Kind: fault.Reset, Prob: 1, Count: 2})
	defer inj.Close()
	hc := &http.Client{Transport: &fault.RoundTripper{Base: http.DefaultTransport, In: inj}}
	c := &client{base: srv.URL, hc: hc, retries: 5, maxWait: 30 * time.Second}
	if _, err := c.doRetry(http.MethodPost, "/jobs", "application/json",
		[]byte(`{"api_frames":4}`), http.StatusAccepted); err != nil {
		t.Fatalf("doRetry through resets: %v", err)
	}
	if body, _ := got.Load().(string); body != `{"api_frames":4}` {
		t.Errorf("replayed body = %q; want the original payload", body)
	}
}

// TestNoRetryOnCallerError pins that a 4xx other than 429 fails
// immediately — retrying a bad request cannot help.
func TestNoRetryOnCallerError(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	c := &client{base: srv.URL, hc: srv.Client(), retries: 5, maxWait: 30 * time.Second}
	if _, err := c.doRetry(http.MethodPost, "/jobs", "application/json", nil, http.StatusAccepted); err == nil {
		t.Fatal("bad request did not fail")
	}
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Errorf("server saw %d calls for a 400; want exactly 1", n)
	}
}

// TestMaxWaitBoundsRetries pins the -max-wait cap: a persistently
// unavailable server exhausts the budget instead of sleeping past it.
func TestMaxWaitBoundsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, `{"error":"degraded"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := &client{base: srv.URL, hc: srv.Client(), retries: 100, maxWait: 200 * time.Millisecond}
	start := time.Now()
	_, err := c.doRetry(http.MethodGet, "/jobs", "", nil, http.StatusOK)
	if err == nil {
		t.Fatal("expected failure once -max-wait is exhausted")
	}
	if !strings.Contains(err.Error(), "max-wait") {
		t.Errorf("error %q does not mention the exhausted budget", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("gave up after %s; the 30s Retry-After leaked past -max-wait", elapsed)
	}
}

// TestRetriesExhausted pins the -retries cap with backoff still honored.
func TestRetriesExhausted(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c := &client{base: srv.URL, hc: srv.Client(), retries: 2, maxWait: 30 * time.Second}
	_, err := c.doRetry(http.MethodGet, "/jobs", "", nil, http.StatusOK)
	if err == nil {
		t.Fatal("expected failure after retries exhausted")
	}
	if n := atomic.LoadInt32(&calls); n != 3 {
		t.Errorf("server saw %d calls; want 3 (initial + 2 retries)", n)
	}
}
