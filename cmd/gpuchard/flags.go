package main

import (
	"context"
	"flag"
	"runtime"
	"time"

	"gpuchar/internal/explorer"
	"gpuchar/internal/serve"
)

// serveOpts are the daemon flags that are not serve.Config fields.
type serveOpts struct {
	listen string
	drain  time.Duration
	// runs bounds the explorer run registry's retention.
	runs int
	// Fault injection (chaos testing only): a fault plan and the seed
	// that makes its schedule reproducible.
	faultPlan string
	faultSeed int64
}

// serveFlags builds the daemon flag set, binding directly into a
// serve.Config.
func serveFlags() (*flag.FlagSet, *serve.Config, *serveOpts) {
	fs := flag.NewFlagSet("gpuchard", flag.ExitOnError)
	cfg := &serve.Config{}
	opts := &serveOpts{}
	fs.StringVar(&opts.listen, "listen", ":9190",
		"address for the job API and observability endpoints")
	fs.IntVar(&cfg.Workers, "workers", runtime.NumCPU(),
		"concurrent characterization jobs")
	fs.IntVar(&cfg.QueueDepth, "queue", 16,
		"queued jobs beyond the running ones before POST /jobs returns 429")
	fs.StringVar(&cfg.SpoolDir, "spool", "",
		"directory for job specs, frame checkpoints and results; enables kill/restart resume (empty: in-memory only)")
	fs.IntVar(&cfg.CacheEntries, "cache-entries", 64,
		"result cache capacity in entries (0 = unbounded)")
	fs.Int64Var(&cfg.CacheBytes, "cache-bytes", 256<<20,
		"result cache capacity in bytes (0 = unbounded)")
	fs.IntVar(&cfg.CheckpointEvery, "checkpoint-every", 25,
		"persist an API-replay checkpoint every N frames (simulated demos checkpoint per demo)")
	fs.DurationVar(&cfg.JobTimeout, "timeout", 0,
		"per-job wall-clock limit (0 = none)")
	fs.DurationVar(&cfg.HangGrace, "hang-grace", 30*time.Second,
		"how long a canceled or expired job may linger before its worker is reaped")
	fs.IntVar(&cfg.DegradedAfter, "degraded-after", 3,
		"consecutive spool write failures before the daemon sheds load with 503 (-1 disables)")
	fs.DurationVar(&cfg.DegradedFor, "degraded-for", 5*time.Second,
		"how long load shedding lasts unless a spool write succeeds sooner")
	fs.DurationVar(&opts.drain, "drain", 30*time.Second,
		"graceful shutdown budget after SIGINT/SIGTERM")
	fs.IntVar(&opts.runs, "runs", explorer.DefaultMaxRuns,
		"completed runs the explorer registry retains for /api/runs and /api/compare")
	fs.StringVar(&opts.faultPlan, "fault", "",
		"CHAOS TESTING: comma-separated fault rules site:kind:prob[:count[:after]] (see internal/fault)")
	fs.Int64Var(&opts.faultSeed, "fault-seed", 1,
		"CHAOS TESTING: seed for the -fault schedule; same seed, same schedule")
	return fs, cfg, opts
}

// contextWithDeadline is context.WithDeadline against Background.
func contextWithDeadline(d time.Time) (context.Context, context.CancelFunc) {
	return context.WithDeadline(context.Background(), d)
}

// contextWithTimeout is context.WithTimeout that treats a zero duration
// as unbounded.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(context.Background())
	}
	return context.WithTimeout(context.Background(), d)
}
