package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"gpuchar/internal/cliutil"
	"gpuchar/internal/explorer"
	"gpuchar/internal/serve"
	"gpuchar/internal/sweep"
)

// runClient talks to a running daemon:
//
//	gpuchard client [-addr URL] [-retries N] [-max-wait D] submit [-exp ids] [-frames N] [-config name] ... [-wait]
//	gpuchard client [-addr URL] sweep -configs a,b,c [-demos ...] [-json out]
//	gpuchard client [-addr URL] compare <a> <b> [-json] [-md]
//	gpuchard client [-addr URL] status|result|cancel <id>
//	gpuchard client [-addr URL] list
//	gpuchard client [-addr URL] configs
func runClient(args []string) {
	fs := flag.NewFlagSet("gpuchard client", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:9190", "daemon base URL")
	retries := fs.Int("retries", 8,
		"max retry attempts on connection errors, 429 backpressure and 5xx (0 disables)")
	maxWait := fs.Duration("max-wait", 2*time.Minute,
		"total budget for one request including retries and backoff (0 = unbounded)")
	_ = fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		cliutil.Usagef("gpuchard", "client needs a command: submit, sweep, compare, status, result, cancel, list, configs")
	}
	c := &client{
		base:    strings.TrimRight(*addr, "/"),
		hc:      http.DefaultClient,
		retries: *retries,
		maxWait: *maxWait,
	}
	switch cmd, ids := rest[0], rest[1:]; cmd {
	case "submit":
		c.submit(ids)
	case "sweep":
		c.sweep(ids)
	case "compare":
		c.compare(ids)
	case "configs":
		c.printJSON("/configs")
	case "status":
		c.oneJob(ids, "status", func(id string) {
			c.printJSON("/jobs/" + id)
		})
	case "result":
		c.oneJob(ids, "result", func(id string) {
			body := c.get("/jobs/"+id+"/result", http.StatusOK)
			_, _ = os.Stdout.Write(body)
		})
	case "cancel":
		c.oneJob(ids, "cancel", func(id string) {
			body, err := c.doRetry(http.MethodDelete, "/jobs/"+id, "", nil, http.StatusOK)
			if err != nil {
				fail(err)
			}
			_, _ = os.Stdout.Write(body)
		})
	case "list":
		c.printJSON("/jobs")
	default:
		cliutil.Usagef("gpuchard", "unknown client command %q", cmd)
	}
}

type client struct {
	base    string
	hc      *http.Client
	retries int
	maxWait time.Duration
}

// submit posts a job spec (or a trace upload) and optionally waits for
// the result.
func (c *client) submit(args []string) {
	fs := flag.NewFlagSet("gpuchard client submit", flag.ExitOnError)
	exp := fs.String("exp", "", "comma-separated experiment ids (empty: the full sweep)")
	frames := fs.Int("frames", 0, "API-level frames per demo (0: server default)")
	simFrames := fs.Int("simframes", 0, "simulated frames per demo (0: server default)")
	width := fs.Int("w", 0, "framebuffer width (0: server default)")
	height := fs.Int("h", 0, "framebuffer height (0: server default)")
	traceF := fs.String("trace", "", "upload this trace file instead of a workload spec")
	name := fs.String("name", "", "label for an uploaded trace's snapshots")
	config := fs.String("config", "", "named hardware config the job simulates under (see the configs command)")
	wait := fs.Bool("wait", false, "block until the job finishes and print the result document")
	_ = fs.Parse(args)

	var body []byte
	var err error
	if *traceF != "" {
		raw, rerr := os.ReadFile(*traceF)
		if rerr != nil {
			fail(rerr)
		}
		url := "/jobs"
		if *name != "" {
			url += "?name=" + *name
		}
		body, err = c.doRetry(http.MethodPost, url, "application/octet-stream", raw, http.StatusAccepted)
	} else {
		spec := serve.JobSpec{
			APIFrames: *frames, SimFrames: *simFrames,
			Width: *width, Height: *height,
			Config: *config,
		}
		if *exp != "" {
			spec.Experiments = strings.Split(*exp, ",")
		}
		payload, _ := json.Marshal(spec)
		body, err = c.doRetry(http.MethodPost, "/jobs", "application/json", payload, http.StatusAccepted)
	}
	if err != nil {
		fail(err)
	}
	var view serve.JobView
	if err := json.Unmarshal(body, &view); err != nil {
		fail(err)
	}
	if !*wait {
		_, _ = os.Stdout.Write(body)
		return
	}
	final := c.waitDone(view.ID)
	if final.State != serve.StateDone {
		fail(fmt.Errorf("job %s: %s (%s)", final.ID, final.State, final.Error))
	}
	res := c.get("/jobs/"+final.ID+"/result", http.StatusOK)
	_, _ = os.Stdout.Write(res)
}

// sweep runs a (config x demo) grid through the daemon's job queue and
// renders the comparative pivot tables. Cells ride the normal job API —
// submit, long-poll, result — so the daemon's content-addressed cache
// dedupes repeated cells across sweeps and submitters.
func (c *client) sweep(args []string) {
	fs := flag.NewFlagSet("gpuchard client sweep", flag.ExitOnError)
	configs := fs.String("configs", "", "comma-separated hardware config names (required; see the configs command)")
	demos := fs.String("demos", "", "comma-separated demo rows (empty: the simulated set)")
	exp := fs.String("exp", "", "comma-separated experiment ids per cell (empty: the sweep default)")
	frames := fs.Int("frames", 0, "API-level frames per demo (0: server default)")
	simFrames := fs.Int("simframes", 0, "simulated frames per demo (0: server default)")
	width := fs.Int("w", 0, "framebuffer width (0: server default)")
	height := fs.Int("h", 0, "framebuffer height (0: server default)")
	workers := fs.Int("workers", 4, "concurrent cells in flight against the daemon")
	jsonOut := fs.String("json", "", "write the gpuchar/sweep/v1 result document to this file")
	csvOut := fs.String("csv", "", "write the long-form CSV to this file")
	md := fs.Bool("md", false, "render pivot tables as markdown")
	_ = fs.Parse(args)
	if *configs == "" {
		cliutil.Usagef("gpuchard", "client sweep needs -configs (comma-separated names)")
	}

	spec := sweep.Spec{
		Configs:     splitList(*configs),
		Demos:       splitList(*demos),
		Experiments: splitList(*exp),
		APIFrames:   *frames,
		SimFrames:   *simFrames,
		Width:       *width,
		Height:      *height,
	}
	res, err := sweep.Run(spec, sweep.QueueRunner{Do: c.doRetry}, sweep.Options{
		Workers: *workers,
		Progress: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "gpuchard: sweep "+format+"\n", args...)
		},
	})
	if err != nil {
		fail(err)
	}
	for _, t := range res.PivotTables() {
		if *md {
			t.Markdown(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	writeArtifact(*jsonOut, res.WriteJSON)
	writeArtifact(*csvOut, res.WriteCSV)
}

// compare fetches the daemon's gpuchar/compare/v1 document between two
// recorded runs (by job ID, config name, or digest prefix) and renders
// it as the per-metric diff tables — the same document builder behind
// the explorer UI's diff view.
func (c *client) compare(args []string) {
	fs := flag.NewFlagSet("gpuchard client compare", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print the raw gpuchar/compare/v1 document instead of tables")
	md := fs.Bool("md", false, "render diff tables as markdown")
	_ = fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		cliutil.Usagef("gpuchard", "client compare needs exactly two runs: <a> <b> (job id, config name, or digest prefix)")
	}
	body := c.get("/api/compare?a="+url.QueryEscape(rest[0])+
		"&b="+url.QueryEscape(rest[1]), http.StatusOK)
	if *jsonOut {
		_, _ = os.Stdout.Write(body)
		return
	}
	var doc explorer.CompareDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		fail(err)
	}
	for _, t := range doc.Tables() {
		if *md {
			t.Markdown(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(v string) []string {
	var out []string
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// writeArtifact writes one sweep output file, skipping empty paths.
func writeArtifact(path string, write func(w io.Writer) error) {
	if path == "" {
		return
	}
	out, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	werr := write(out)
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fail(werr)
	}
	fmt.Fprintf(os.Stderr, "gpuchard: wrote %s\n", path)
}

// waitDone long-polls the job until it terminates.
func (c *client) waitDone(id string) serve.JobView {
	for {
		body := c.get("/jobs/"+id+"?wait=30s", http.StatusOK)
		var view serve.JobView
		if err := json.Unmarshal(body, &view); err != nil {
			fail(err)
		}
		switch view.State {
		case serve.StateQueued, serve.StateRunning:
			fmt.Fprintf(os.Stderr, "gpuchard: %s %s: %d/%d frames\n",
				view.ID, view.State, view.FramesDone, view.FramesTotal)
			time.Sleep(100 * time.Millisecond)
		default:
			return view
		}
	}
}

func (c *client) oneJob(args []string, cmd string, f func(id string)) {
	if len(args) != 1 {
		cliutil.Usagef("gpuchard", "client %s needs exactly one job id", cmd)
	}
	f(args[0])
}

func (c *client) printJSON(path string) {
	body := c.get(path, http.StatusOK)
	_, _ = os.Stdout.Write(body)
}

func (c *client) get(path string, want int) []byte {
	body, err := c.doRetry(http.MethodGet, path, "", nil, want)
	if err != nil {
		fail(err)
	}
	return body
}

// retryBase is the first backoff step; each retry doubles it (with
// ±50% jitter) up to retryCap. A server Retry-After hint overrides a
// shorter computed backoff — the server knows its own load.
const (
	retryBase = 200 * time.Millisecond
	retryCap  = 10 * time.Second
)

// doRetry issues one request with the client's retry policy: transient
// transport errors, 429 backpressure and 5xx responses are retried with
// exponential backoff and jitter, honoring Retry-After, until the
// status matches want, the attempts run out, or the -max-wait budget
// expires. The payload is replayed from memory on every attempt, so a
// half-sent body is never resumed mid-stream.
func (c *client) doRetry(method, path, contentType string, payload []byte, want int) ([]byte, error) {
	var deadline time.Time
	if c.maxWait > 0 {
		deadline = time.Now().Add(c.maxWait)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, c.base+path, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if !deadline.IsZero() {
			// Propagate the remaining budget as the request deadline so a
			// hung server cannot out-wait -max-wait.
			ctx, cancel := contextWithDeadline(deadline)
			req = req.WithContext(ctx)
			defer cancel()
		}

		resp, err := c.hc.Do(req)
		var status int
		var retryAfter time.Duration
		var body []byte
		if err != nil {
			lastErr = err
		} else {
			body, _ = io.ReadAll(resp.Body)
			resp.Body.Close()
			status = resp.StatusCode
			if status == want {
				return body, nil
			}
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			lastErr = fmt.Errorf("%s %s: HTTP %d: %s", method, path, status,
				strings.TrimSpace(string(body)))
			if !retryableStatus(status) {
				return nil, lastErr
			}
		}
		if attempt >= c.retries {
			return nil, fmt.Errorf("%w (after %d attempts)", lastErr, attempt+1)
		}
		delay := backoff(attempt, retryAfter)
		if !deadline.IsZero() && time.Now().Add(delay).After(deadline) {
			return nil, fmt.Errorf("%w (gave up: -max-wait %s exhausted)", lastErr, c.maxWait)
		}
		fmt.Fprintf(os.Stderr, "gpuchard: %v; retrying in %s (%d/%d)\n",
			lastErr, delay.Round(time.Millisecond), attempt+1, c.retries)
		time.Sleep(delay)
	}
}

// retryableStatus: 429 is backpressure, 5xx is the server (or an
// intermediary) hurting — both are worth another try. 4xx other than
// 429 is the caller's bug; retrying cannot help.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// backoff computes the sleep before retry attempt+1: exponential with
// ±50% jitter, floored by the server's Retry-After hint.
func backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := retryBase << attempt
	if d > retryCap || d <= 0 {
		d = retryCap
	}
	// Jitter spreads a thundering herd of retrying clients.
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// parseRetryAfter reads the delay-seconds form of a Retry-After header
// (the only form the daemon emits); 0 when absent or unparseable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
