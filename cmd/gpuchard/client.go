package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"gpuchar/internal/cliutil"
	"gpuchar/internal/serve"
)

// runClient talks to a running daemon:
//
//	gpuchard client [-addr URL] submit [-exp ids] [-frames N] ... [-wait]
//	gpuchard client [-addr URL] status|result|cancel <id>
//	gpuchard client [-addr URL] list
func runClient(args []string) {
	fs := flag.NewFlagSet("gpuchard client", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:9190", "daemon base URL")
	_ = fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		cliutil.Usagef("gpuchard", "client needs a command: submit, status, result, cancel, list")
	}
	c := &client{base: strings.TrimRight(*addr, "/")}
	switch cmd, ids := rest[0], rest[1:]; cmd {
	case "submit":
		c.submit(ids)
	case "status":
		c.oneJob(ids, "status", func(id string) {
			c.printJSON("/jobs/" + id)
		})
	case "result":
		c.oneJob(ids, "result", func(id string) {
			body := c.get("/jobs/"+id+"/result", http.StatusOK)
			_, _ = os.Stdout.Write(body)
		})
	case "cancel":
		c.oneJob(ids, "cancel", func(id string) {
			req, _ := http.NewRequest(http.MethodDelete, c.base+"/jobs/"+id, nil)
			c.do(req, http.StatusOK, os.Stdout)
		})
	case "list":
		c.printJSON("/jobs")
	default:
		cliutil.Usagef("gpuchard", "unknown client command %q", cmd)
	}
}

type client struct {
	base string
}

// submit posts a job spec (or a trace upload) and optionally waits for
// the result.
func (c *client) submit(args []string) {
	fs := flag.NewFlagSet("gpuchard client submit", flag.ExitOnError)
	exp := fs.String("exp", "", "comma-separated experiment ids (empty: the full sweep)")
	frames := fs.Int("frames", 0, "API-level frames per demo (0: server default)")
	simFrames := fs.Int("simframes", 0, "simulated frames per demo (0: server default)")
	width := fs.Int("w", 0, "framebuffer width (0: server default)")
	height := fs.Int("h", 0, "framebuffer height (0: server default)")
	traceF := fs.String("trace", "", "upload this trace file instead of a workload spec")
	name := fs.String("name", "", "label for an uploaded trace's snapshots")
	wait := fs.Bool("wait", false, "block until the job finishes and print the result document")
	_ = fs.Parse(args)

	var resp *http.Response
	var err error
	if *traceF != "" {
		raw, rerr := os.ReadFile(*traceF)
		if rerr != nil {
			fail(rerr)
		}
		url := c.base + "/jobs"
		if *name != "" {
			url += "?name=" + *name
		}
		resp, err = http.Post(url, "application/octet-stream", bytes.NewReader(raw))
	} else {
		spec := serve.JobSpec{
			APIFrames: *frames, SimFrames: *simFrames,
			Width: *width, Height: *height,
		}
		if *exp != "" {
			spec.Experiments = strings.Split(*exp, ",")
		}
		body, _ := json.Marshal(spec)
		resp, err = http.Post(c.base+"/jobs", "application/json", bytes.NewReader(body))
	}
	if err != nil {
		fail(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		fail(fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body))))
	}
	var view serve.JobView
	if err := json.Unmarshal(body, &view); err != nil {
		fail(err)
	}
	if !*wait {
		_, _ = os.Stdout.Write(body)
		return
	}
	final := c.waitDone(view.ID)
	if final.State != serve.StateDone {
		fail(fmt.Errorf("job %s: %s (%s)", final.ID, final.State, final.Error))
	}
	res := c.get("/jobs/"+final.ID+"/result", http.StatusOK)
	_, _ = os.Stdout.Write(res)
}

// waitDone long-polls the job until it terminates.
func (c *client) waitDone(id string) serve.JobView {
	for {
		body := c.get("/jobs/"+id+"?wait=30s", http.StatusOK)
		var view serve.JobView
		if err := json.Unmarshal(body, &view); err != nil {
			fail(err)
		}
		switch view.State {
		case serve.StateQueued, serve.StateRunning:
			fmt.Fprintf(os.Stderr, "gpuchard: %s %s: %d/%d frames\n",
				view.ID, view.State, view.FramesDone, view.FramesTotal)
			time.Sleep(100 * time.Millisecond)
		default:
			return view
		}
	}
}

func (c *client) oneJob(args []string, cmd string, f func(id string)) {
	if len(args) != 1 {
		cliutil.Usagef("gpuchard", "client %s needs exactly one job id", cmd)
	}
	f(args[0])
}

func (c *client) printJSON(path string) {
	body := c.get(path, http.StatusOK)
	_, _ = os.Stdout.Write(body)
}

func (c *client) get(path string, want int) []byte {
	req, _ := http.NewRequest(http.MethodGet, c.base+path, nil)
	var buf bytes.Buffer
	c.do(req, want, &buf)
	return buf.Bytes()
}

func (c *client) do(req *http.Request, want int, out io.Writer) {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fail(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		fail(fmt.Errorf("%s %s: HTTP %d: %s", req.Method, req.URL.Path,
			resp.StatusCode, strings.TrimSpace(string(body))))
	}
	_, _ = out.Write(body)
}
