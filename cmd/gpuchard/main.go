// Command gpuchard is the characterization daemon: a job queue, a
// content-addressed result cache and a checkpoint/resume spool behind
// the observability HTTP server, so characterization runs become
// submittable jobs instead of one-shot processes.
//
// Server:
//
//	gpuchard -listen :9190 -workers 4 -spool /var/lib/gpuchar
//
// mounts the job API next to the usual endpoints:
//
//	POST   /jobs              submit a JSON job spec or a raw trace upload
//	GET    /jobs              list jobs
//	GET    /jobs/{id}         job status (?wait=30s long-polls)
//	GET    /jobs/{id}/result  the finished gpuchar/metrics/v1 document
//	DELETE /jobs/{id}         cancel
//	/metrics /progress /healthz /debug/pprof/   (observability)
//	GET    /                  embedded explorer UI (runs, live view, diffing)
//	GET    /api/runs          recorded run registry (also /api/runs/{id})
//	GET    /api/compare?a=&b= gpuchar/compare/v1 diff of two runs/configs
//	GET    /api/events        SSE: progress ticks + frame counter deltas
//
// With -spool, jobs survive the process: a killed daemon restarted on
// the same spool resumes interrupted jobs from their last frame
// checkpoint and serves finished results from disk.
//
// Client:
//
//	gpuchard client -addr http://host:9190 submit -exp fig1,table3
//	gpuchard client submit -trace doom3.trc -name doom3
//	gpuchard client status <id>
//	gpuchard client compare <a> <b>
//	gpuchard client result <id> > metrics.json
//	gpuchard client cancel <id>
//	gpuchard client list
//
// Exit codes: 0 success, 1 failure, 2 usage error, 3 trace format
// error, 4 replay error.
package main

import (
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"gpuchar/internal/cliutil"
	"gpuchar/internal/explorer"
	"gpuchar/internal/fault"
	"gpuchar/internal/obsv"
	"gpuchar/internal/serve"
)

func fail(err error) {
	cliutil.Fail("gpuchard", err)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "client" {
		runClient(os.Args[2:])
		return
	}
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "serve" {
		args = args[1:]
	}
	runServe(args)
}

// runServe starts the daemon and blocks until SIGINT/SIGTERM, then
// drains: running jobs persist a final checkpoint, in-flight HTTP
// responses complete, and the process exits cleanly.
func runServe(args []string) {
	fs, cfg, opts := serveFlags()
	_ = fs.Parse(args)
	if err := cliutil.PositiveFlags(
		cliutil.Flag{Name: "-workers", Value: cfg.Workers},
		cliutil.Flag{Name: "-queue", Value: cfg.QueueDepth},
		cliutil.Flag{Name: "-checkpoint-every", Value: cfg.CheckpointEvery}); err != nil {
		cliutil.Usagef("gpuchard", "%v", err)
	}

	// -fault arms the chaos harness: a seeded injector driving faults at
	// the spool and execution boundaries. Production runs leave it off
	// and pay nothing (nil injector, real filesystem).
	if opts.faultPlan != "" {
		rules, err := fault.ParsePlan(opts.faultPlan)
		if err != nil {
			cliutil.Usagef("gpuchard", "-fault: %v", err)
		}
		inj := fault.New(opts.faultSeed, rules...)
		defer inj.Close()
		cfg.Inject = inj
		cfg.FS = fault.NewFaulty(fault.OS{}, inj)
		fmt.Fprintf(os.Stderr, "gpuchard: FAULT INJECTION ARMED (seed %d): %s\n",
			opts.faultSeed, opts.faultPlan)
	}

	// The explorer registry records every completed job and serves the
	// embedded UI at /, the run/compare APIs under /api/, and the SSE
	// event stream.
	reg := explorer.NewRegistry(opts.runs)
	cfg.Explorer = reg

	svc, err := serve.Open(*cfg)
	if err != nil {
		fail(err)
	}
	srv, err := obsv.StartServer(opts.listen, obsv.ServerSources{
		Snapshots: svc.MetricsSnapshots,
		Mount: func(mux *http.ServeMux) {
			svc.Mount(mux)
			reg.Mount(mux)
		},
		Health: svc.Health,
	})
	if err != nil {
		fail(fmt.Errorf("-listen %q: %w", opts.listen, err))
	}
	fmt.Fprintf(os.Stderr, "gpuchard: serving jobs on http://%s (workers %d, queue %d",
		srv.Addr, cfg.Workers, cfg.QueueDepth)
	if cfg.SpoolDir != "" {
		fmt.Fprintf(os.Stderr, ", spool %s", cfg.SpoolDir)
	}
	fmt.Fprintln(os.Stderr, ")")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "gpuchard: %s, draining (budget %s)\n", s, opts.drain)

	ctx, cancel := contextWithTimeout(opts.drain)
	defer cancel()
	// End the SSE event streams first — they are in-flight requests the
	// HTTP drain would otherwise wait on — then stop accepting HTTP so
	// clients see clean refusals, then let the workers persist their
	// final checkpoints.
	reg.Close()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "gpuchard: http shutdown: %v\n", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		fail(fmt.Errorf("shutdown: %w", err))
	}
}
