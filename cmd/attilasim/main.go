// Command attilasim runs one synthetic game timedemo through the GPU
// pipeline simulator and dumps the per-stage statistics — the direct
// equivalent of a single ATTILA simulation run in the paper's
// methodology.
//
// Usage:
//
//	attilasim -demo "Doom3/trdemo2" -frames 2
//	attilasim -list
//	attilasim -demo "UT2004/Primeval" -w 512 -h 384 -nohz
//	attilasim -demo "Quake4/demo4" -workers 8     # tile-parallel backend
//	attilasim -demo "Doom3/trdemo2" -metrics run.json   # machine-readable
//	attilasim -demo "Doom3/trdemo2" -trace run-trace.json  # Perfetto trace
//	attilasim -demo "Doom3/trdemo2" -frames 50 -listen :9090
//
// -metrics writes every pipeline counter of the run (aggregate plus
// per-frame snapshots) in a format picked by extension: .json
// (gpuchar/metrics/v1), .csv, or Prometheus text otherwise.
//
// Exit codes: 0 success, 1 simulation failure, 2 usage error, 3 trace
// format error, 4 replay error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"gpuchar"
	"gpuchar/internal/cliutil"
	"gpuchar/internal/mem"
	"gpuchar/internal/metrics"
	"gpuchar/internal/obsv"
)

// exitCode is the shared taxonomy (1 failure, 3 trace format error,
// 4 replay error) — the same table tracetool uses; a package variable
// so tests can pin it by name.
var exitCode = cliutil.ExitCode

// profStop finishes the -cpuprofile (if any) before an error exit:
// cliutil.Fail calls os.Exit, which skips defers, and a truncated
// profile is unreadable.
var profStop = func() {}

func fail(err error) {
	profStop()
	cliutil.Fail("attilasim", err)
}

func main() {
	var (
		demo       = flag.String("demo", "UT2004/Primeval", "Table I demo name")
		frames     = flag.Int("frames", 2, "frames to simulate")
		width      = flag.Int("w", 1024, "framebuffer width")
		height     = flag.Int("h", 768, "framebuffer height")
		list       = flag.Bool("list", false, "list simulated demo names")
		pngOut     = flag.String("png", "", "write the last rendered frame as PNG")
		noHZ       = flag.Bool("nohz", false, "disable Hierarchical Z")
		noComp     = flag.Bool("nocompress", false, "disable z/color compression and fast clear")
		metricsOut = flag.String("metrics", "",
			"write the run's counters machine-readably; format by extension (.json, .csv, otherwise Prometheus text)")
		workers = flag.Int("workers", runtime.NumCPU(),
			"tile-parallel fragment workers; framebuffer and kill counts are exact at any count, cache/memory counters are sharded (see DESIGN.md)")
		traceOut = flag.String("trace", "",
			"write a Chrome/Perfetto trace of the run (load it at ui.perfetto.dev)")
		traceSample = flag.Int("trace-sample", 1,
			"record 1-in-N fine-grained spans (per-draw, per-worker-drain); structural spans are always recorded")
		listen = flag.String("listen", "",
			"serve /metrics, /progress, /healthz and /debug/pprof on this address (e.g. :9090)")
		cpuprofile = flag.String("cpuprofile", "",
			"write a CPU profile of the run to this file (single-run alternative to -listen's /debug/pprof)")
	)
	flag.Parse()

	if *list {
		for _, p := range gpuchar.SimulatedProfiles() {
			fmt.Println(p.Name)
		}
		return
	}

	prof := gpuchar.ProfileByName(*demo)
	if prof == nil || !prof.Simulated {
		cliutil.Usagef("attilasim", "-demo %q is not a simulated demo (see -list)", *demo)
	}
	if err := cliutil.PositiveFlags(
		cliutil.Flag{Name: "-frames", Value: *frames},
		cliutil.Flag{Name: "-w", Value: *width},
		cliutil.Flag{Name: "-h", Value: *height}); err != nil {
		cliutil.Usagef("attilasim", "%v", err)
	}
	if *traceSample < 1 {
		cliutil.Usagef("attilasim", "-trace-sample %d must be >= 1", *traceSample)
	}
	stopProf, err := cliutil.StartCPUProfile(*cpuprofile)
	if err != nil {
		fail(err)
	}
	profStop = stopProf
	defer stopProf()
	cfg := gpuchar.R520Config(*width, *height)
	cfg.TileWorkers = *workers
	if *noHZ {
		cfg.HZ = false
	}
	if *noComp {
		cfg.ZCompression = false
		cfg.ColorCompression = false
		cfg.FastClear = false
	}
	var tr *obsv.Tracer
	if *traceOut != "" {
		tr = obsv.New(obsv.Options{SampleEvery: *traceSample})
		cfg.Trace = tr
		cfg.TraceProcess = prof.Name
	}

	// Drive the pipeline directly (rather than through the core runner)
	// so the live GPU is reachable: the observability server scrapes it
	// mid-run and -png reads its framebuffer afterwards.
	g := gpuchar.NewGPU(cfg)
	dev := gpuchar.NewDevice(prof.API, g)
	wl := gpuchar.NewWorkload(prof, dev, cfg.Width, cfg.Height)
	tracker := obsv.NewProgressTracker(0)
	wl.OnFrame = func(frame int) { tracker.FrameDone(prof.Name, frame) }
	if *listen != "" {
		srv, err := obsv.StartServer(*listen, obsv.ServerSources{
			Snapshots: func() []metrics.Snapshot {
				if s, ok := g.PublishedSnapshot(); ok {
					return []metrics.Snapshot{s.WithLabels("demo", prof.Name, "source", "sim")}
				}
				return nil
			},
			Progress: tracker.Snapshot,
		})
		if err != nil {
			fail(fmt.Errorf("-listen %q: %w", *listen, err))
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "attilasim: observability server on http://%s\n", srv.Addr)
	}

	if err := wl.Run(*frames); err != nil {
		fail(err)
	}
	if *pngOut != "" {
		out, err := os.Create(*pngOut)
		if err != nil {
			fail(err)
		}
		if err := g.Target().EncodePNG(out); err != nil {
			fail(err)
		}
		if err := out.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *pngOut)
	}
	res := gpuchar.MicroResultFromGPU(prof, g, cfg)

	fmt.Printf("== %s: %d frames at %dx%d\n", prof.Name, *frames, *width, *height)
	clip, cull, trav := res.ClipCullPct()
	fmt.Printf("geometry: clip %.1f%%  cull %.1f%%  traversed %.1f%%  vcache %.3f\n",
		clip, cull, trav, res.VertexCacheHitRate())
	or, oz, osd, ob := res.Overdraw()
	fmt.Printf("overdraw: raster %.2f  z&st %.2f  shaded %.2f  blended %.2f\n",
		or, oz, osd, ob)
	hz, zs, alpha, mask, blend := res.QuadKillPct()
	fmt.Printf("quads:    HZ %.2f%%  z&st %.2f%%  alpha %.2f%%  mask %.2f%%  blend %.2f%%\n",
		hz, zs, alpha, mask, blend)
	qr, qz := res.QuadEfficiency()
	fmt.Printf("quad efficiency: raster %.1f%%  z&st %.1f%%\n", qr, qz)
	fmt.Printf("texturing: %.2f bilinear samples/request, %.2f ALU instr/bilinear\n",
		res.BilinearPerRequest(), res.ALUPerBilinear())
	zc, l0, l1, colc := res.CacheHitRates()
	fmt.Printf("caches: z&st %.1f%%  texL0 %.1f%%  texL1 %.1f%%  color %.1f%%\n",
		zc, l0, l1, colc)
	mb, rd, wr, gbs := res.MemoryProfile()
	fmt.Printf("memory: %.1f MB/frame (%.0f%% read / %.0f%% write), %.1f GB/s @100fps\n",
		mb, rd, wr, gbs)
	split := res.TrafficSplit()
	for c := mem.Client(0); c < mem.NumClients; c++ {
		fmt.Printf("  %-10s %5.1f%%\n", c, split[c])
	}
	v, zb, sh, col := res.BytesPer()
	fmt.Printf("bytes: %.2f /vertex, %.2f /z&st frag, %.2f /shaded frag, %.2f /blended frag\n",
		v, zb, sh, col)

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, res); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	if tr != nil {
		if err := writeChromeTrace(*traceOut, tr); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *traceOut)
	}
}

// writeMetrics dumps the run's counter snapshots to path, choosing the
// format from the extension: .json and .csv select those backends,
// anything else gets the Prometheus text exposition format.
func writeMetrics(path string, res *gpuchar.MicroResult) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	snaps := res.MetricsSnapshots()
	switch filepath.Ext(path) {
	case ".json":
		err = metrics.WriteJSON(out, snaps)
	case ".csv":
		err = metrics.WriteCSV(out, snaps)
	default:
		err = metrics.WriteProm(out, "gpuchar", snaps)
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeChromeTrace dumps the run's trace events to path.
func writeChromeTrace(path string, tr *obsv.Tracer) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tr.WriteChromeJSON(out)
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
