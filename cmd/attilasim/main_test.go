package main

import (
	"errors"
	"fmt"
	"testing"

	"gpuchar/internal/trace"
)

// TestExitCode pins attilasim's exit-code taxonomy to the same table
// tracetool uses: 1 failure, 3 trace format error, 4 replay error.
func TestExitCode(t *testing.T) {
	format := &trace.FormatError{Cmd: 1, Err: errors.New("truncated")}
	replay := &trace.ReplayError{Cmd: 2, Err: errors.New("bad handle")}
	cases := []struct {
		err  error
		want int
	}{
		{errors.New("simulation failure"), 1},
		{format, 3},
		{fmt.Errorf("wrapped: %w", format), 3},
		{replay, 4},
		{fmt.Errorf("wrapped: %w", replay), 4},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("exitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
