// Command benchjson measures the simulator's frame throughput and
// allocation profile across tile-worker counts, plus the rasterizer
// feed paths, and writes the results as JSON (BENCH_pipeline.json in
// the repo) so performance changes are reviewable in diffs.
//
// Usage:
//
//	benchjson                     # print JSON to stdout
//	benchjson -o BENCH_pipeline.json
//	benchjson -w 256 -h 192 -demo "Doom3/trdemo2"
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"gpuchar"
	"gpuchar/internal/explorer"
	"gpuchar/internal/geom"
	"gpuchar/internal/gmath"
	"gpuchar/internal/metrics"
	"gpuchar/internal/obsv"
	"gpuchar/internal/rast"
	"gpuchar/internal/serve"
	"gpuchar/internal/shader"
)

// measurement is one benchmark result in the output JSON.
type measurement struct {
	Workers     int     `json:"workers,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// output is the BENCH_pipeline.json document.
type output struct {
	Demo       string `json:"demo"`
	Resolution string `json:"resolution"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`

	// PipelineFrame is one full simulated frame per op, swept over
	// tile-worker counts (workers=1 is the serial pipeline).
	PipelineFrame []measurement `json:"pipeline_frame"`

	// MultipassFrame is the same sweep over a render-to-texture family
	// (see -mpdemo): each op renders an off-screen pass, resolves it to
	// a texture and composites it, so the cost of the surface switch
	// and resolve engine shows up next to the forward path's numbers.
	MultipassFrame []measurement `json:"multipass_frame"`

	// ShaderExec isolates the fragment-shader executor: the retained
	// reference interpreter versus the compiled quad kernels the
	// pipeline runs (see internal/shader/compile.go). One op is one 2x2
	// quad through the alpha-tested fragment shader with a nil sampler,
	// so texture instructions write zero texels without dragging the
	// cache hierarchy into the measurement.
	ShaderExec map[string]measurement `json:"shader_exec"`

	// Rasterizer compares the two triangle feed paths per op (one
	// triangle covering ~64x64 pixels): the legacy heap Setup + closure
	// callback, and the allocation-free SetupInto + reused QuadEmitter
	// the pipeline now uses.
	Rasterizer map[string]measurement `json:"rasterizer"`

	// MetricsExport measures the unified counter registry's overhead:
	// the merged cumulative snapshot EndFrame takes at each frame
	// boundary, the snapshot diff that derives one frame's activity,
	// and serializing a run's snapshots as the -json/-metrics payload.
	MetricsExport map[string]measurement `json:"metrics_export"`

	// StageWalltime is the per-stage busy-time split of a short traced
	// run (the obsv stage clocks' view): absolute nanoseconds and the
	// share of the accounted total per pipeline stage. Shares, not
	// absolutes, are the reviewable signal — wall-clock varies by host.
	StageWalltime *stageWalltime `json:"stage_walltime,omitempty"`

	// ServiceThroughput is the serve scheduler's end-to-end job rate:
	// identical-cost API-level jobs pushed through the queue at several
	// worker counts. The scaling ratio between counts, not the absolute
	// rate, is the reviewable signal.
	ServiceThroughput *serviceThroughput `json:"service_throughput,omitempty"`

	// ConfigSweep is the sweep orchestrator's cell rate: a small
	// (hardware-config x demo) grid computed through the local runner at
	// several worker counts. Every cell is a full (cheap) simulation, so
	// the scaling ratio between counts is the reviewable signal.
	ConfigSweep *configSweep `json:"config_sweep,omitempty"`

	// ExplorerAPI is the explorer's serving-path costs: building the
	// /api/compare document from two real recorded runs, and fanning one
	// frame event out to 1/8/64 draining SSE subscribers (the hub's
	// never-block publish path).
	ExplorerAPI *explorerAPI `json:"explorer_api,omitempty"`
}

// explorerAPI holds the compare-builder and SSE fan-out measurements.
type explorerAPI struct {
	// CompareBuild is one Compare(a, b) document per op, over the full
	// snapshot series of two single-frame simulated runs.
	CompareBuild measurement `json:"compare_build"`
	// SSEFanout is one Hub.Publish per op; Workers is the subscriber
	// count the event fans out to.
	SSEFanout []measurement `json:"sse_fanout"`
}

// configSweep is the cells/sec sweep over orchestrator worker counts.
type configSweep struct {
	Cells       int                `json:"cells"`
	Configs     []string           `json:"configs"`
	SimFrames   int                `json:"sim_frames"`
	Resolution  string             `json:"resolution"`
	CellsPerSec map[string]float64 `json:"cells_per_sec"`
}

// serviceThroughput is the jobs/sec sweep over scheduler worker counts.
type serviceThroughput struct {
	Jobs       int                `json:"jobs"`
	APIFrames  int                `json:"api_frames"`
	JobsPerSec map[string]float64 `json:"jobs_per_sec"`
}

// stageWalltime is the per-stage timing summary derived from the
// tracer's stage clocks over an instrumented run.
type stageWalltime struct {
	Frames  int                `json:"frames"`
	Workers int                `json:"workers"`
	TotalNs int64              `json:"total_ns"`
	Nanos   map[string]int64   `json:"nanos"`
	Share   map[string]float64 `json:"share"`
}

func bench(f func(b *testing.B)) measurement {
	r := testing.Benchmark(f)
	return measurement{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// benchFrame measures one rendered frame per op at a tile-worker count.
func benchFrame(demo string, w, h, workers int) measurement {
	m := bench(func(b *testing.B) {
		prof := gpuchar.ProfileByName(demo)
		cfg := gpuchar.R520Config(w, h)
		cfg.TileWorkers = workers
		g := gpuchar.NewGPU(cfg)
		dev := gpuchar.NewDevice(prof.API, g)
		wl := gpuchar.NewWorkload(prof, dev, w, h)
		if err := wl.Setup(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wl.RenderFrame()
		}
	})
	m.Workers = workers
	return m
}

// benchShaderExec measures one 2x2 quad through AlphaTestedFS on the
// reference interpreter and on the compiled path. The input values keep
// every lane alive through the alpha test so both runs execute the full
// program.
func benchShaderExec() map[string]measurement {
	prog := shader.AlphaTestedFS()
	var in [4][shader.NumInputs]gmath.Vec4
	for lane := range in {
		for i := range in[lane] {
			in[lane][i] = gmath.V4(0.1+0.25*float32(lane), 0.03*float32(i), 0.5, 1)
		}
	}
	var out [4][shader.NumOutputs]gmath.Vec4
	interp := bench(func(b *testing.B) {
		m := shader.NewMachine()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.RunQuadInterpreted(prog, &in, 0xF, &out)
		}
	})
	compiled := bench(func(b *testing.B) {
		m := shader.NewMachine()
		prog.Compiled() // one-time lowering, outside the timed loop
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.RunQuad(prog, &in, 0xF, &out)
		}
	})
	return map[string]measurement{
		"interpreted": interp,
		"compiled":    compiled,
	}
}

// benchTri returns a screen-space triangle for the rasterizer paths.
func benchTri() geom.Triangle {
	var tri geom.Triangle
	tri.V[0] = geom.ScreenVertex{X: 2, Y: 2, Z: 0.5, InvW: 1}
	tri.V[1] = geom.ScreenVertex{X: 66, Y: 2, Z: 0.5, InvW: 1}
	tri.V[2] = geom.ScreenVertex{X: 2, Y: 66, Z: 0.5, InvW: 1}
	tri.CountsAsTraversed = true
	tri.FrontFacing = true
	return tri
}

func benchRasterizer() map[string]measurement {
	cfg := rast.Config{Width: 128, Height: 128}
	tri := benchTri()
	legacy := bench(func(b *testing.B) {
		r := rast.New()
		quads := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := rast.Setup(&tri)
			r.Rasterize(s, cfg, func(q *rast.Quad) { quads++ })
		}
	})
	reused := bench(func(b *testing.B) {
		r := rast.New()
		var s rast.SetupTri
		var em countEmitter
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rast.SetupInto(&tri, &s)
			r.RasterizeTo(&s, cfg, &em)
		}
	})
	return map[string]measurement{
		"legacy_closure": legacy,
		"emitter_reuse":  reused,
	}
}

type countEmitter struct{ quads int }

func (c *countEmitter) EmitQuad(q *rast.Quad) { c.quads++ }

// benchMetricsExport renders one frame of the demo (workers=4 so the
// snapshot also merges shard registries) and then measures the
// snapshot, diff and JSON-encode operations in isolation.
func benchMetricsExport(demo string, w, h int) map[string]measurement {
	prof := gpuchar.ProfileByName(demo)
	cfg := gpuchar.R520Config(w, h)
	cfg.TileWorkers = 4
	g := gpuchar.NewGPU(cfg)
	dev := gpuchar.NewDevice(prof.API, g)
	wl := gpuchar.NewWorkload(prof, dev, w, h)
	if err := wl.Run(1); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	res := gpuchar.MicroResultFromGPU(prof, g, cfg)
	snaps := res.MetricsSnapshots()

	snapshot := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.MetricsSnapshot()
		}
	})
	cur := g.MetricsSnapshot()
	diff := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cur.Diff(cur)
		}
	})
	writeJSON := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := metrics.WriteJSON(io.Discard, snaps); err != nil {
				b.Fatal(err)
			}
		}
	})
	return map[string]measurement{
		"frame_snapshot_merged": snapshot,
		"snapshot_diff":         diff,
		"write_json_run":        writeJSON,
	}
}

// measureStageWalltime renders a short traced run and splits its
// accounted busy time per pipeline stage via the tracer's stage
// clocks. Sampling is set high so the span ring costs next to nothing;
// the clocks run regardless.
func measureStageWalltime(demo string, w, h, workers, frames int) *stageWalltime {
	prof := gpuchar.ProfileByName(demo)
	cfg := gpuchar.R520Config(w, h)
	cfg.TileWorkers = workers
	cfg.Trace = obsv.New(obsv.Options{SampleEvery: 1 << 20})
	cfg.TraceProcess = prof.Name
	g := gpuchar.NewGPU(cfg)
	dev := gpuchar.NewDevice(prof.API, g)
	wl := gpuchar.NewWorkload(prof, dev, w, h)
	if err := wl.Run(frames); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	nanos := g.StageNanos()
	out := &stageWalltime{
		Frames: frames, Workers: workers,
		Nanos: nanos, Share: map[string]float64{},
	}
	for _, ns := range nanos {
		out.TotalNs += ns
	}
	if out.TotalNs > 0 {
		for stage, ns := range nanos {
			out.Share[stage] = float64(ns) / float64(out.TotalNs)
		}
	}
	return out
}

// measureServiceThroughput pushes n identical-cost jobs through a
// fresh serve.Service per worker count and reports jobs/sec. Each job
// renders the fig1 demo set at the API level; a one-pixel width
// offset per job keeps the cache keys distinct (API-replay cost does
// not depend on resolution) so every job really renders.
func measureServiceThroughput(n, apiFrames int, workerCounts []int) *serviceThroughput {
	out := &serviceThroughput{
		Jobs: n, APIFrames: apiFrames,
		JobsPerSec: map[string]float64{},
	}
	for _, workers := range workerCounts {
		s, err := serve.Open(serve.Config{Workers: workers, QueueDepth: n})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		ids := make([]string, 0, n)
		for i := 0; i < n; i++ {
			v, err := s.Submit(serve.JobSpec{
				Experiments: []string{"fig1"},
				APIFrames:   apiFrames,
				Width:       1024 + i,
				Height:      768,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: submit: %v\n", err)
				os.Exit(1)
			}
			ids = append(ids, v.ID)
		}
		for _, id := range ids {
			done, err := s.Done(id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			<-done
		}
		elapsed := time.Since(start)
		out.JobsPerSec[strconv.Itoa(workers)] = float64(n) / elapsed.Seconds()
		if err := s.Shutdown(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
	return out
}

// measureConfigSweep runs a (config x demo) grid through the local
// sweep runner at each worker count and reports cells/sec. The grid
// uses the sweep's default demos and experiment (table14, the cheapest
// full-simulation experiment) at a small resolution, so one cell is a
// real simulation without dominating the benchmark run.
func measureConfigSweep(workerCounts []int) *configSweep {
	spec := gpuchar.SweepSpec{
		Configs:   []string{"r520", "caches-off", "no-hz"},
		SimFrames: 1,
		Width:     192,
		Height:    144,
	}
	out := &configSweep{
		Configs: spec.Configs, SimFrames: 1, Resolution: "192x144",
		CellsPerSec: map[string]float64{},
	}
	for _, workers := range workerCounts {
		start := time.Now()
		res, err := gpuchar.RunSweep(spec, gpuchar.LocalSweepRunner{},
			gpuchar.SweepOptions{Workers: workers})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: sweep: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		out.Cells = len(res.Rows)
		out.CellsPerSec[strconv.Itoa(workers)] = float64(len(res.Rows)) / elapsed.Seconds()
	}
	return out
}

// measureExplorerAPI builds two recorded runs from real single-frame
// simulations under different hardware configs, then measures the
// compare-document build and the SSE hub's fan-out to draining
// subscribers.
func measureExplorerAPI(demo string, w, h int) *explorerAPI {
	mkRun := func(id, config string) *explorer.Run {
		v, ok := gpuchar.HWConfigByName(config)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: unknown config %s\n", config)
			os.Exit(1)
		}
		prof := gpuchar.ProfileByName(demo)
		res, err := gpuchar.CharacterizeConfig(prof, 1, v.GPUConfig(w, h))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return &explorer.Run{
			ID: id, Kind: explorer.KindConfig, Config: config,
			ConfigDigest: v.Digest(), SimFrames: 1,
			Snapshots: res.MetricsSnapshots(),
		}
	}
	ra := mkRun("bench-a", "r520")
	rb := mkRun("bench-b", "no-hz")

	out := &explorerAPI{}
	out.CompareBuild = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			explorer.Compare(ra, rb)
		}
	})

	ev := explorer.FrameEvent("bench", demo, 1, ra.FinalSnapshot())
	for _, n := range []int{1, 8, 64} {
		hub := explorer.NewHub()
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			sub := hub.Subscribe(1024)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range sub.C {
				}
			}()
		}
		m := bench(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hub.Publish(ev)
			}
		})
		m.Workers = n
		out.SSEFanout = append(out.SSEFanout, m)
		hub.Close()
		wg.Wait()
	}
	return out
}

func main() {
	var (
		demo   = flag.String("demo", "Doom3/trdemo2", "simulated demo to measure")
		mpDemo = flag.String("mpdemo", "Deferred/gbuffer", "multi-pass demo for the multipass_frame sweep")
		width  = flag.Int("w", 256, "framebuffer width")
		height = flag.Int("h", 192, "framebuffer height")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	counts := []int{1, 2, 4, 8}
	if n := runtime.NumCPU(); n > 8 {
		counts = append(counts, n)
	}
	doc := output{
		Demo:       *demo,
		Resolution: fmt.Sprintf("%dx%d", *width, *height),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Rasterizer: benchRasterizer(),
	}
	fmt.Fprintf(os.Stderr, "benchjson: shader exec...\n")
	doc.ShaderExec = benchShaderExec()
	fmt.Fprintf(os.Stderr, "benchjson: metrics export...\n")
	doc.MetricsExport = benchMetricsExport(*demo, *width, *height)
	fmt.Fprintf(os.Stderr, "benchjson: stage walltime...\n")
	doc.StageWalltime = measureStageWalltime(*demo, *width, *height, 4, 4)
	fmt.Fprintf(os.Stderr, "benchjson: service throughput...\n")
	doc.ServiceThroughput = measureServiceThroughput(24, 6, []int{1, 4, 8})
	fmt.Fprintf(os.Stderr, "benchjson: config sweep...\n")
	doc.ConfigSweep = measureConfigSweep([]int{1, 4, 8})
	fmt.Fprintf(os.Stderr, "benchjson: explorer api...\n")
	doc.ExplorerAPI = measureExplorerAPI(*demo, *width, *height)
	for _, n := range counts {
		fmt.Fprintf(os.Stderr, "benchjson: pipeline frame, workers=%d...\n", n)
		doc.PipelineFrame = append(doc.PipelineFrame, benchFrame(*demo, *width, *height, n))
	}
	for _, n := range counts {
		fmt.Fprintf(os.Stderr, "benchjson: multipass frame, workers=%d...\n", n)
		doc.MultipassFrame = append(doc.MultipassFrame, benchFrame(*mpDemo, *width, *height, n))
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
