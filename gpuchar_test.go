package gpuchar_test

import (
	"testing"

	"gpuchar"
)

func TestFacadeProfiles(t *testing.T) {
	profs := gpuchar.Profiles()
	if len(profs) != 12 {
		t.Fatalf("profiles = %d, want 12", len(profs))
	}
	if gpuchar.ProfileByName("Doom3/trdemo2") == nil {
		t.Error("lookup failed")
	}
	if gpuchar.ProfileByName("missing") != nil {
		t.Error("bogus lookup succeeded")
	}
	if len(gpuchar.SimulatedProfiles()) != 3 {
		t.Error("simulated set wrong")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(gpuchar.Experiments()) != 25 {
		t.Errorf("experiments = %d", len(gpuchar.Experiments()))
	}
	ctx := gpuchar.NewContext()
	res, err := gpuchar.RunExperiment("table1", ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 12 {
		t.Error("table1 wrong shape")
	}
	if _, err := gpuchar.RunExperiment("nope", ctx); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeProfileAPI(t *testing.T) {
	r, err := gpuchar.ProfileAPI(gpuchar.ProfileByName("Riddick/MainFrame"), 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgIndicesPerFrame() <= 0 {
		t.Error("no indices measured")
	}
}

func TestFacadeCharacterizeSmall(t *testing.T) {
	cfg := gpuchar.R520Config(128, 96)
	res, err := gpuchar.CharacterizeConfig(
		gpuchar.ProfileByName("UT2004/Primeval"), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.VertexCacheHitRate() <= 0.4 {
		t.Errorf("vcache = %v", res.VertexCacheHitRate())
	}
	or, _, _, ob := res.Overdraw()
	if or <= 0 || ob <= 0 {
		t.Error("no overdraw measured")
	}
}

func TestFacadeGPUConstruction(t *testing.T) {
	g := gpuchar.NewGPU(gpuchar.R520Config(64, 48))
	dev := gpuchar.NewDevice(gpuchar.OpenGL, g)
	if dev.API() != gpuchar.OpenGL {
		t.Error("API lost")
	}
	// The null backend also satisfies the Backend interface.
	var b gpuchar.Backend = gpuchar.NullBackend{}
	_ = gpuchar.NewDevice(gpuchar.Direct3D, b)
}
